"""Command-line interface (`repro-classify` / ``python -m repro.cli``).

Subcommands mirror a hardware bring-up flow:

* ``generate`` — synthesise a ClassBench-style ruleset (and trace);
* ``build`` — build a search structure and report its size/shape;
* ``classify`` — run a trace through any registered engine backend
  (decision trees default to the accelerator model) and print
  throughput/energy on the paper's devices;
* ``bench`` — serve a trace through a :class:`~repro.serve.Engine`
  session (sharded, optionally persistent/cached/updatable, optionally
  with streamed segment ingestion) and report serving throughput plus,
  for the accelerator, device throughput and energy;
* ``serve`` — stand up a :class:`~repro.serve.MultiTenantEngine` from
  a base engine config plus a tenants JSON (one ruleset/trace/weight
  per tenant), run the weighted-fair session, and print per-tenant
  throughput and SLO percentiles alongside the aggregate;
* ``linecard`` — run a declarative line-card RX stage graph
  (:class:`~repro.stages.StageGraph`: parse -> drop -> extract ->
  tcam_prefilter -> flow_cache -> classify -> rewrite -> queue_select)
  over one engine session and print per-stage telemetry;
* ``sweep`` — expand a declarative :class:`~repro.sweeps.SweepSpec`
  scenario grid (family x size x backend x cache x skew x churn), run
  every cell through the engine, and emit ``BENCH_sweeps.json`` plus a
  markdown matrix (the CI sweep jobs' entry point);
* ``tables`` — regenerate the paper's tables (wraps run_all);
* ``fsm`` — print a Figure-5 style cycle trace for a few packets.

``classify`` and ``bench`` are thin shells over the declarative serving
API: the flag namespace maps onto :class:`~repro.serve.EngineConfig`
via ``EngineConfig.from_args`` (and back via ``to_args`` — the config
test suite pins the round trip), and all backend construction, cache
wrapping and pool lifecycle belongs to :class:`~repro.serve.Engine`.

``--algorithm`` accepts every name in :mod:`repro.engine.registry`
(``repro-classify classify --algorithm rfc ...``); ``build`` errors
cleanly for backends that do not construct a decision tree.
"""

from __future__ import annotations

import argparse
import sys

from .algorithms import OpCounter, build_hicuts, build_hypercuts
from .classbench import (
    generate_ruleset,
    generate_trace,
    generate_update_stream,
    generate_zipf_trace,
)
from .core.errors import ConfigError, ReproError
from .core.packet import PacketTrace
from .core.ruleset import RuleSet
from .energy import CacheEnergyModel, UpdateCostModel, asic_model, fpga_model, ops_delta
from .engine import CachedClassifier, available_backends, backend_spec
from .engine.pipeline import SHARD_MODES
from .engine.registry import registered_aliases
from .hw import build_memory_image, figure5_trace
from .serve import (
    DEFAULT_SEGMENT_PACKETS,
    DEGRADATION_LADDER,
    ENERGY_MODELS,
    FAULT_POLICIES,
    ON_MALFORMED,
    Engine,
    EngineConfig,
    FaultPlan,
    MultiTenantEngine,
    TenantSpec,
    iter_trace_segments,
)
from .sweeps import (
    TIERS,
    SweepSpec,
    default_spec,
    parse_filters,
    render_matrix,
    run_sweep,
)

#: Names ``--algorithm`` accepts: every registered backend plus aliases.
_ALGORITHM_CHOICES = sorted(set(available_backends()) | set(registered_aliases()))
_TREE_ALGORITHMS = ("hicuts", "hypercuts")


def _load_or_generate(args) -> RuleSet:
    if getattr(args, "ruleset_file", None):
        return RuleSet.load(args.ruleset_file)
    return generate_ruleset(args.family, args.rules, seed=args.seed)


def _load_or_generate_trace(args, ruleset: RuleSet) -> PacketTrace:
    if getattr(args, "trace_file", None):
        return PacketTrace.load(args.trace_file)
    zipf = getattr(args, "zipf", None)
    if zipf is not None:
        return generate_zipf_trace(
            ruleset, args.packets, n_flows=args.flows, skew=zipf,
            seed=args.seed + 1,
        )
    return generate_trace(ruleset, args.packets, seed=args.seed + 1)


def _build_tree(ruleset: RuleSet, args):
    build = build_hypercuts if args.algorithm == "hypercuts" else build_hicuts
    return build(
        ruleset, binth=args.binth, spfac=args.spfac, hw_mode=not args.software
    )


def _open_engine(ruleset: RuleSet, args) -> Engine:
    """Open the serving session the CLI namespace describes.

    The whole knob-to-backend policy (tree names route to the
    accelerator unless ``--software``, ``--updates``/``--updatable``
    builds through the update-serving surface, ``--cache-entries``
    wraps a flow cache) lives in
    :meth:`repro.serve.Engine.build_classifier`; the CLI only maps
    flags to an :class:`~repro.serve.EngineConfig`.
    """
    config = EngineConfig.from_args(args)
    if config.updatable:
        build_ops = OpCounter()
        engine = Engine.open(config, ruleset, ops=build_ops)
        inner = getattr(engine.classifier, "classifier", engine.classifier)
        inner.build_ops_snapshot = build_ops.copy()
        return engine
    return Engine.open(config, ruleset)


def _print_cache_report(clf, hits: int, misses: int, evictions: int) -> None:
    """Hit rate, effective accesses and the hit/miss energy split.

    Counts are passed in rather than read off ``clf.cache.stats``: in a
    sharded pipeline the caches live in forked workers, and only the
    per-chunk counters travel back to this process.
    """
    lookups = hits + misses
    hit_rate = hits / lookups if lookups else 0.0
    cache = clf.cache
    model = CacheEnergyModel.for_classifier(clf)
    print(f"flow cache: {cache.entries} entries x {cache.ways}-way, "
          f"hit rate {100 * hit_rate:.1f}% ({hits}/{lookups}), "
          f"{misses} backend lookups, {evictions} evictions")
    print(f"effective accesses/lookup: "
          f"{model.effective_accesses_per_lookup(hit_rate):.2f} "
          f"vs {model.backend_accesses:.0f} uncached "
          f"({model.effective_lookup_speedup(hit_rate):.1f}x fewer)")
    print(f"cache energy model: {model.energy_per_packet_j(hit_rate):.3E} "
          f"J/packet vs {model.uncached_energy_per_packet_j():.3E} uncached")


def cmd_generate(args) -> int:
    rs = generate_ruleset(args.family, args.rules, seed=args.seed)
    rs.save(args.output)
    print(f"wrote {len(rs)} rules to {args.output}")
    if args.trace:
        trace = generate_trace(rs, args.packets, seed=args.seed + 1)
        trace.save(args.trace)
        print(f"wrote {trace.n_packets} packets to {args.trace}")
    return 0


def cmd_build(args) -> int:
    spec = backend_spec(args.algorithm)
    if not spec.builds_tree:
        print(
            f"error: backend {spec.name!r} does not build a decision tree; "
            f"'build' supports {', '.join(_TREE_ALGORITHMS)} — use "
            f"'classify' or 'bench' for {spec.name!r}",
            file=sys.stderr,
        )
        return 2
    rs = _load_or_generate(args)
    tree = _build_tree(rs, args)
    st = tree.stats()
    print(f"ruleset: {rs.name} ({len(rs)} rules)")
    print(f"algorithm: {args.algorithm} ({'sw' if args.software else 'hw'} mode)")
    print(f"nodes: {st.n_nodes} ({st.n_internal} internal, {st.n_leaves} leaves)")
    print(f"depth: {st.max_depth}, max leaf: {st.max_leaf_rules} rules")
    if not args.software:
        image = build_memory_image(tree, speed=args.speed)
        print(
            f"memory image: {image.words_used} words = {image.bytes_used:,} "
            f"bytes (speed={args.speed})"
        )
        print(f"worst-case cycles: {image.worst_case_cycles()}")
    else:
        print(f"software memory model: {tree.software_memory_bytes():,} bytes")
    return 0


def cmd_classify(args) -> int:
    rs = _load_or_generate(args)
    trace = _load_or_generate_trace(args, rs)
    with _open_engine(rs, args) as engine:
        clf = engine.classifier
        if hasattr(clf, "run_trace"):  # the accelerator: full cost model
            run = clf.run_trace(trace)
            asic, fpga = asic_model(), fpga_model()
            a, f = asic.evaluate(run), fpga.evaluate(run)
            matched = int((run.match >= 0).sum())
            print(f"classified {trace.n_packets} packets, {matched} matched")
            print(f"mean occupancy: {run.mean_occupancy():.3f} cycles/packet")
            print(f"worst-case latency: {run.worst_latency()} cycles")
            print(f"ASIC 226MHz: {a.throughput_pps / 1e6:8.1f} Mpps, "
                  f"{a.energy_per_packet_norm_j:.3E} J/packet")
            print(f"FPGA  77MHz: {f.throughput_pps / 1e6:8.1f} Mpps, "
                  f"{f.energy_per_packet_norm_j:.3E} J/packet")
            return 0
        report = engine.classify(trace)
        print(f"classified {report.n_packets} packets, "
              f"{report.matched} matched")
        print(f"backend: {backend_spec(args.algorithm).name}")
        print(f"memory model: {clf.memory_bytes():,} bytes")
        print(f"worst-case accesses/lookup: "
              f"{clf.memory_accesses_per_lookup()}")
        if isinstance(clf, CachedClassifier):
            _print_cache_report(
                clf, report.cache_hits, report.cache_misses,
                report.cache_evictions,
            )
    return 0


def _parse_update_mix(mix: str) -> float:
    """``"70:30"`` -> insert fraction 0.7 (inserts : removes)."""
    try:
        ins, rem = (float(part) for part in mix.split(":"))
    except ValueError:
        raise ConfigError(
            f"bad --update-mix {mix!r}; expected INSERT:REMOVE, e.g. 70:30"
        ) from None
    if ins < 0 or rem < 0 or ins + rem <= 0:
        raise ConfigError(f"bad --update-mix {mix!r}; weights must be >= 0")
    return ins / (ins + rem)


def _print_update_report(clf, res) -> None:
    """Epoch trajectory, apply-latency percentiles, patch-vs-recompile
    counters, and the update energy model (control-plane ops vs a
    from-scratch rebuild)."""
    print(f"updates: {res.update_batches} batches / {res.update_ops} ops "
          f"({res.update_skipped} skipped), epochs "
          f"{res.first_epoch}..{res.final_epoch}")
    pct = res.update_latency
    if pct is not None:
        print(f"update latency/batch: p50 {pct['p50_ms']:.3f} ms, "
              f"p95 {pct['p95_ms']:.3f} ms, p99 {pct['p99_ms']:.3f} ms "
              f"(max {pct['max_ms']:.3f} ms over {pct['batches']} batches)")
    inner = getattr(clf, "classifier", clf)
    tree = getattr(inner, "tree", None)
    if tree is not None and hasattr(tree, "flat_patches"):
        tree.flat  # flush any pending control-plane patch
        print(f"flat kernel (this process): {tree.flat_patches} row-splice "
              f"patches, {tree.flat_compiles} full compiles")
    snapshot = getattr(clf, "build_ops_snapshot", None) or getattr(
        inner, "build_ops_snapshot", None
    )
    ops = getattr(inner, "ops", None)
    if snapshot is None or not hasattr(ops, "counts"):
        return
    delta = ops_delta(ops, snapshot)
    if delta.total() <= 0 or res.update_ops == 0:
        return
    model = UpdateCostModel()
    # Average the *energy* over batches, not the op counts — integer
    # counters would floor low-frequency categories to zero.
    update_j = model.update_energy_j(delta) / max(1, res.update_batches)
    rebuild_j = model.rebuild_energy_j(snapshot)
    break_even = rebuild_j / update_j if update_j > 0 else float("inf")
    print(f"update energy model: {update_j:.3E} J/batch control-plane vs "
          f"{rebuild_j:.3E} J full rebuild "
          f"({break_even:,.0f} batches to break even)")


def _profile_hot_path(clf, trace, chunk_size: int) -> dict | None:
    """One extra single-process pass with per-stage wall-clock timing.

    Stage seconds (cache probe, miss-set kernel traversal, result
    scatter, cache fill) accumulate inside the classifier's ``profile``
    hook across chunks; everything the stages do not account for —
    chunk slicing, Python dispatch, stats assembly — is reported as
    ``dispatch_s``.  Runs single-process on purpose: forked workers
    would accumulate the stage times in their own address spaces.
    """
    from .engine.pipeline import ClassificationPipeline

    if not isinstance(clf, CachedClassifier):
        return None
    clf.profile = {}
    try:
        res = ClassificationPipeline(clf, chunk_size=chunk_size).run(trace)
        stages = dict(clf.profile)
    finally:
        clf.profile = None
    stages["dispatch_s"] = max(0.0, res.elapsed_s - sum(stages.values()))
    stages["total_s"] = res.elapsed_s
    stages["fused"] = bool(
        clf.fused and getattr(clf.classifier, "fused_match", None)
    )
    return stages


def _merge_profile_artifact(stages: dict, path: str = "BENCH_engine.json"):
    """Read-modify-write the bench artifact's ``profile`` section."""
    import json
    from pathlib import Path

    artifact = Path(path)
    data: dict = {}
    if artifact.exists():
        try:
            data = json.loads(artifact.read_text())
        except ValueError:
            data = {}
    data["profile"] = stages
    artifact.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return artifact


def _print_profile(stages: dict, artifact) -> None:
    total = stages.get("total_s") or 0.0
    print(f"hot-path profile ({'fused' if stages.get('fused') else 'unfused'}"
          f" lookup, single process):")
    for key in ("dispatch_s", "probe_s", "traverse_s", "scatter_s", "fill_s"):
        if key not in stages:
            continue
        seconds = stages[key]
        share = 100.0 * seconds / total if total else 0.0
        print(f"  {key[:-2]:>9s}: {seconds * 1e3:8.2f} ms ({share:4.1f}%)")
    print(f"  merged into {artifact}")


def _print_fault_report(fault) -> None:
    """One-line supervisor summary plus any degradations taken."""
    parts = [f"{fault.retries} retries", f"{fault.replays} chunk replays"]
    if fault.worker_crashes:
        parts.append(f"{fault.worker_crashes} worker crashes")
    if fault.timeouts:
        parts.append(f"{fault.timeouts} deadline overruns")
    if fault.arena_faults:
        parts.append(f"{fault.arena_faults} arena fence trips")
    if fault.update_retries:
        parts.append(f"{fault.update_retries} update retries")
    if fault.ingest_retries:
        parts.append(f"{fault.ingest_retries} ingest retries")
    if fault.quarantined:
        parts.append(f"{fault.quarantined} packets quarantined")
    print(f"fault recovery: {', '.join(parts)}")
    for step in fault.degradations:
        print(f"  degraded {step}")
    if fault.recovery_s:
        print(f"  worst recovery: {max(fault.recovery_s) * 1e3:.1f} ms")


def cmd_bench(args) -> int:
    rs = _load_or_generate(args)
    trace = _load_or_generate_trace(args, rs)
    fault_plan = FaultPlan.coerce(args.faults)
    if args.persistent and args.shards < 2:
        print(
            "warning: --persistent needs --shards >= 2 to fork a worker "
            "pool; running single-process",
            file=sys.stderr,
        )
    if args.stream and args.shards > 1 and args.stream <= args.chunk_size:
        print(
            f"warning: --stream {args.stream} <= --chunk-size "
            f"{args.chunk_size} gives single-chunk segments, which serve "
            "single-process; use segments of at least "
            f"{2 * args.chunk_size} packets to engage the shards",
            file=sys.stderr,
        )
    schedule = None
    if args.updates:
        schedule = generate_update_stream(
            rs, args.updates, trace.n_packets,
            insert_fraction=_parse_update_mix(args.update_mix),
            batch_size=args.update_batch, seed=args.seed + 2,
        )
    with _open_engine(rs, args) as engine:
        clf = engine.classifier
        # The update stream rides along the first run; repeats then
        # serve the updated ruleset (steady state after the churn).
        if args.stream:
            res = engine.classify_stream(
                iter_trace_segments(trace, args.stream), updates=schedule,
                faults=fault_plan,
            )
            print(f"streamed ingestion: {res.n_segments} segments x "
                  f"{args.stream} packets (bounded ring, overlapped)")
        else:
            res = engine.classify(trace, updates=schedule, faults=fault_plan)
        first_run = res
        for i in range(1, args.repeats):
            rerun = engine.classify(trace)
            print(f"run {i + 1}/{args.repeats}: "
                  f"{rerun.throughput_pps:,.0f} packets/s "
                  f"(wall clock {rerun.elapsed_s * 1e3:.1f} ms)")
            res = rerun
        # The persistent pool is forked lazily on first use, so its
        # existence after the runs says whether the mode engaged.
        pool_mode = "persistent" if engine.pool_engaged else "per-run"
        profile_stages = None
        if args.profile:
            profile_stages = _profile_hot_path(clf, trace, args.chunk_size)
            if profile_stages is None:
                print(
                    "warning: --profile needs a flow-cached engine "
                    "(--cache-entries); skipping",
                    file=sys.stderr,
                )
    print(f"backend: {res.backend}  shards: {res.n_shards}  "
          f"chunk: {res.chunk_size} packets  chunks: {res.n_chunks}  "
          f"pool: {pool_mode}")
    print(f"classified {res.n_packets} packets, {res.matched} matched "
          f"({100 * res.matched_fraction:.1f}%)")
    print(f"pipeline throughput: {res.throughput_pps:,.0f} packets/s "
          f"(wall clock {res.elapsed_s * 1e3:.1f} ms)")
    if first_run.fault is not None and first_run.fault.any():
        _print_fault_report(first_run.fault)
    if schedule is not None:
        _print_update_report(clf, first_run)
    if res.cache_hits is not None and isinstance(clf, CachedClassifier):
        _print_cache_report(
            clf, res.cache_hits, res.cache_misses, res.cache_evictions
        )
        shard_stats = res.shard_cache_stats()
        if shard_stats and len(shard_stats) > 1:
            for d in shard_stats:
                print(f"  shard {d['shard']}: {d['chunks']} chunks, "
                      f"hit rate {100 * d['hit_rate']:.1f}% "
                      f"({d['hits']}/{d['hits'] + d['misses']}), "
                      f"{d['evictions']} evictions")
    if profile_stages is not None:
        _print_profile(
            profile_stages, _merge_profile_artifact(profile_stages)
        )
    mo = res.mean_occupancy()
    if mo is not None and res.device_throughput_pps is not None:
        # The report evaluates the device --energy-model selects.
        label = "ASIC 226MHz" if res.energy_model == "asic" else "FPGA  77MHz"
        print(f"mean occupancy: {mo:.3f} cycles/packet")
        print(f"{label}: {res.device_throughput_pps / 1e6:8.1f} Mpps, "
              f"{res.energy_per_packet_j:.3E} J/packet")
    return 0


#: Keys a tenants-file entry may carry: identity/weight, an EngineConfig
#: overlay, and the synthetic workload knobs (mirrors the generate/bench
#: flag namespace so a tenants file reads like N bench invocations).
_TENANT_FILE_KEYS = {
    "name", "weight", "config",
    "family", "rules", "seed", "packets", "zipf", "flows",
}


def _load_tenants_file(path: str, base: EngineConfig):
    """Parse a tenants JSON into ``(spec, ruleset)`` pairs + workloads.

    The file is a JSON list of tenant objects.  Each entry may set
    ``name`` / ``weight``, overlay fields of the base engine config via
    ``config`` (validated through ``EngineConfig.from_dict``), and shape
    its synthetic workload with ``family`` / ``rules`` / ``seed`` /
    ``packets`` and optionally ``zipf`` / ``flows``.  Seeds default to a
    per-index offset so tenants get distinct rulesets and traces.
    """
    import json

    with open(path, encoding="utf-8") as fh:
        entries = json.load(fh)
    if not isinstance(entries, list) or not entries:
        raise ConfigError(
            f"{path}: expected a non-empty JSON list of tenant objects"
        )
    tenants: list[tuple[TenantSpec, RuleSet]] = []
    workloads: dict[str, PacketTrace] = {}
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ConfigError(f"{path}: tenant #{i} is not a JSON object")
        unknown = set(entry) - _TENANT_FILE_KEYS
        if unknown:
            raise ConfigError(
                f"{path}: tenant #{i} has unknown keys "
                f"{sorted(unknown)}; known: {sorted(_TENANT_FILE_KEYS)}"
            )
        config = base
        overlay = entry.get("config") or {}
        if overlay:
            config = EngineConfig.from_dict({**base.to_dict(), **overlay})
        spec = TenantSpec(
            name=str(entry.get("name", f"tenant{i}")),
            config=config,
            weight=float(entry.get("weight", 1.0)),
        )
        seed = int(entry.get("seed", 7 + 13 * i))
        ruleset = generate_ruleset(
            entry.get("family", "acl1"), int(entry.get("rules", 500)),
            seed=seed,
        )
        packets = int(entry.get("packets", 10000))
        zipf = entry.get("zipf")
        if zipf is not None:
            trace = generate_zipf_trace(
                ruleset, packets, n_flows=int(entry.get("flows", 1024)),
                skew=float(zipf), seed=seed + 1,
            )
        else:
            trace = generate_trace(ruleset, packets, seed=seed + 1)
        tenants.append((spec, ruleset))
        workloads[spec.name] = trace
    return tenants, workloads


def cmd_serve(args) -> int:
    base = EngineConfig()
    if args.config:
        import json

        with open(args.config, encoding="utf-8") as fh:
            base = EngineConfig.from_dict(json.load(fh))
    tenants, workloads = _load_tenants_file(args.tenants, base)
    with MultiTenantEngine.open(tenants) as engine:
        report = engine.serve(
            workloads, segment_packets=args.segment_packets,
            quantum=args.quantum,
        )
    print(f"served {len(report.tenants)} tenants: {report.n_packets} "
          f"packets in {report.elapsed_s * 1e3:.1f} ms "
          f"({report.throughput_pps:,.0f} packets/s aggregate)")
    for t in report.tenants:
        line = (f"  {t.name:<12s} w={t.weight:<4g} "
                f"{t.n_packets:>8d} packets  {t.n_segments:>4d} segments  "
                f"{t.throughput_pps:>12,.0f} pps")
        slo = t.slo
        if slo is not None:
            line += (f"  p50 {slo['p50_ms']:.2f} / p95 {slo['p95_ms']:.2f}"
                     f" / p99 {slo['p99_ms']:.2f} ms")
        if t.fault:
            line += f"  FAULT: {t.fault}"
        print(line)
    if args.output:
        import json

        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")
    return 0


def cmd_sweep(args) -> int:
    if args.spec:
        spec = SweepSpec.load(args.spec)
        if args.quick:
            spec = spec.quick()
    else:
        spec = default_spec("quick" if args.quick else args.tier)
    filters = parse_filters(args.filter)
    print(
        f"sweep {spec.name!r}: {spec.n_cells} cells "
        f"({len(spec.families)} families x {len(spec.sizes)} sizes x "
        f"{len(spec.backends)} backends x cache/skew grid)"
        + (f", filtered by {args.filter}" if filters else "")
    )
    result = run_sweep(
        spec, filters=filters, progress=print if args.verbose else None
    )
    if not result.cells:
        print("error: no cells matched the filter", file=sys.stderr)
        return 2
    artifact = result.save(args.output)
    print(
        f"ran {len(result.cells)} cells in {result.elapsed_s:.1f}s, "
        f"wrote {artifact}"
    )
    matrix = render_matrix(result.to_dict())
    if args.matrix:
        with open(args.matrix, "w", encoding="utf-8") as fh:
            fh.write(matrix + "\n")
        print(f"wrote matrix to {args.matrix}")
    else:
        print()
        print(matrix)
    return 0


def cmd_linecard(args) -> int:
    from .stages import StageGraph, StageGraphSpec, default_graph

    if args.emit_graph:
        spec = default_graph(
            {"backend": args.algorithm},
            cache_entries=args.cache_entries,
            cache_ways=args.cache_ways,
        )
        spec.save(args.emit_graph)
        print(f"wrote the default {len(spec.stages)}-stage graph "
              f"to {args.emit_graph}")
        return 0
    if args.graph:
        spec = StageGraphSpec.load(args.graph)
    else:
        spec = default_graph(
            {"backend": args.algorithm},
            cache_entries=args.cache_entries,
            cache_ways=args.cache_ways,
        )
    rs = _load_or_generate(args)
    plan = FaultPlan.coerce(args.faults) if args.faults else None
    source = args.trace_lines or _load_or_generate_trace(args, rs)
    with StageGraph(spec, rs) as graph:
        report = graph.run(
            source, faults=plan, segment_packets=args.segment_packets
        )
    print(f"graph {spec.name!r}: {len(spec.stages)} stages over the "
          f"{graph.config.backend!r} backend")
    print(f"{report.n_packets} packets in {report.elapsed_s * 1e3:.1f} ms "
          f"({report.throughput_pps:,.0f} packets/s), "
          f"{100 * report.matched_fraction:.1f}% matched")
    for s in report.stages:
        line = (f"  {s.name:<15s} in {s.packets_in:>8d}  "
                f"out {s.packets_out:>8d}  {s.energy_j:.3E} J")
        if s.dropped:
            line += "  drops " + ", ".join(
                f"{k}={v}" for k, v in sorted(s.drops.items())
            )
        if s.retries:
            line += f"  retries {s.retries}"
        print(line)
    hit_rate = report.cache_hit_rate
    if hit_rate is not None:
        print(f"flow cache hit rate: {100 * hit_rate:.1f}%")
    fault = report.fault
    if fault is not None and fault.quarantined:
        print(f"quarantined: {fault.quarantined} malformed trace lines")
    if fault is not None and (fault.faults or fault.retries):
        print(f"faults: {fault.to_dict()}")
    if args.output:
        import json

        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")
    return 0


def cmd_tables(args) -> int:
    from .experiments.run_all import run_all

    out = run_all(quick=args.quick, seed=args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("# Regenerated experiments\n\n" + out + "\n")
        print(f"wrote {args.output}")
    else:
        print(out)
    return 0


def cmd_fsm(args) -> int:
    rs = _load_or_generate(args)
    tree = _build_tree(rs, args)
    image = build_memory_image(tree, speed=args.speed)
    trace = generate_trace(rs, args.packets, seed=args.seed + 1)
    for e in figure5_trace(image, trace):
        print(f"cycle {e.cycle:>5d}  {e.state:<10s} {e.detail}")
    return 0


def _add_workload_args(
    p: argparse.ArgumentParser,
    packets: int = 10000,
    algorithms: list[str] | None = None,
) -> None:
    p.add_argument("--family", default="acl1", choices=["acl1", "fw1", "ipc1"])
    p.add_argument("--rules", type=int, default=1000)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--ruleset-file", default=None, help="load instead of generating")
    p.add_argument("--algorithm", default="hypercuts",
                   choices=algorithms or _ALGORITHM_CHOICES)
    p.add_argument("--binth", type=int, default=30)
    p.add_argument("--spfac", type=float, default=4)
    p.add_argument("--speed", type=int, default=1, choices=[0, 1])
    p.add_argument("--software", action="store_true",
                   help="original software algorithm instead of hw mode")
    p.add_argument("--packets", type=int, default=packets)


def _add_cache_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cache-entries", type=int, default=0,
                   help="flow-cache entries in front of the backend "
                        "(0 = no cache)")
    p.add_argument("--cache-ways", type=int, default=4,
                   help="flow-cache set associativity")
    p.add_argument("--cache-max-age", type=int, default=0, metavar="N",
                   help="flow-cache TTL: entries expire N lookups after "
                        "the fill (0 = no aging)")
    p.add_argument("--zipf", type=float, default=None, metavar="SKEW",
                   help="generate a Zipf(SKEW) flow-popularity trace "
                        "instead of the Pareto-burst one")
    p.add_argument("--flows", type=int, default=1024,
                   help="distinct flows in the Zipf trace (with --zipf)")


def _add_engine_args(p: argparse.ArgumentParser) -> None:
    """Flags shared by every EngineConfig-backed subcommand."""
    p.add_argument("--energy-model", default="asic", choices=ENERGY_MODELS,
                   help="device model the engine report evaluates "
                        "occupancy against")
    p.add_argument("--fault-policy", default=None,
                   choices=list(FAULT_POLICIES),
                   help="serving-fault posture: fail raises a typed "
                        "ServingFaultError, retry replays the dispatch "
                        "with backoff, degrade retries then walks the "
                        "worker-tier ladder "
                        f"({' -> '.join(DEGRADATION_LADDER)})")
    p.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="dispatch retries per tier before failing or "
                        "degrading (default 2)")
    p.add_argument("--chunk-timeout", type=float, default=None, metavar="S",
                   help="per-chunk dispatch deadline in seconds "
                        "(0 = no deadline; crash detection stays on)")
    p.add_argument("--on-malformed", default=None,
                   choices=list(ON_MALFORMED),
                   help="malformed trace-line policy for file ingestion: "
                        "raise aborts, quarantine dead-letters bad lines "
                        "(bounded, counted) and serves the rest")


def build_parser() -> argparse.ArgumentParser:
    """The full CLI parser (exposed so the config round-trip tests can
    feed ``EngineConfig.to_args()`` back through the real parser)."""
    parser = argparse.ArgumentParser(prog="repro-classify", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="synthesise a ruleset (and trace)")
    g.add_argument("--family", default="acl1", choices=["acl1", "fw1", "ipc1"])
    g.add_argument("--rules", type=int, default=1000)
    g.add_argument("--seed", type=int, default=7)
    g.add_argument("--output", required=True)
    g.add_argument("--trace", default=None)
    g.add_argument("--packets", type=int, default=10000)
    g.set_defaults(fn=cmd_generate)

    b = sub.add_parser("build", help="build a search structure")
    _add_workload_args(b)
    b.set_defaults(fn=cmd_build)

    c = sub.add_parser("classify", help="classify a trace")
    _add_workload_args(c, packets=100000)
    c.add_argument("--trace-file", default=None)
    _add_cache_args(c)
    _add_engine_args(c)
    c.set_defaults(fn=cmd_classify)

    n = sub.add_parser("bench", help="serve a trace through an Engine "
                                     "session (sharded pipeline)")
    _add_workload_args(n, packets=100000)
    n.add_argument("--trace-file", default=None)
    n.add_argument("--shards", type=int, default=1,
                   help="worker shards (fork-based; 1 = single process)")
    n.add_argument("--chunk-size", type=int, default=4096,
                   help="packets per streamed chunk")
    n.add_argument("--shard-mode", default=None, choices=list(SHARD_MODES),
                   help="worker tier: auto forks only when the clamped "
                        "worker count can win, processes always forks, "
                        "threads runs shard-affine in-process workers "
                        "(default: auto)")
    n.add_argument("--min-chunk-packets", type=int, default=None,
                   metavar="N",
                   help="coalesce dispatches on update-free runs to at "
                        "least N packets each (0 disables; default 65536)")
    n.add_argument("--profile", action="store_true",
                   help="run one extra single-process pass with per-stage "
                        "timing (dispatch/probe/traverse/scatter+fill) and "
                        "merge the breakdown into BENCH_engine.json "
                        "(needs --cache-entries)")
    n.add_argument("--persistent", action="store_true",
                   help="reuse one forked worker pool across runs with "
                        "shared-memory results (see --repeats)")
    n.add_argument("--repeats", type=int, default=1,
                   help="run the trace N times (shows the persistent "
                        "pool's fork-amortisation win)")
    n.add_argument("--stream", type=int, default=0, metavar="PACKETS",
                   help="serve the trace as streamed PACKETS-sized "
                        "segments through Engine.stream (bounded result "
                        "ring, ingestion overlapped with classification; "
                        "0 = one-shot)")
    n.add_argument("--updates", type=int, default=0, metavar="N",
                   help="interleave N live rule updates with the first "
                        "run (tree algorithms serve them through the "
                        "incremental backend)")
    n.add_argument("--updatable", action="store_true",
                   help="build through the update-serving surface even "
                        "without --updates (implied by --updates)")
    n.add_argument("--update-mix", default="50:50", metavar="INS:REM",
                   help="insert:remove weighting of the update stream")
    n.add_argument("--update-batch", type=int, default=8, metavar="OPS",
                   help="operations per scheduled update batch")
    n.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="inject a deterministic fault plan (JSON written "
                        "by FaultPlan.save) into the first run; pair with "
                        "--fault-policy retry|degrade to exercise recovery")
    _add_cache_args(n)
    _add_engine_args(n)
    n.set_defaults(fn=cmd_bench)

    v = sub.add_parser(
        "serve",
        help="serve N tenants through one MultiTenantEngine "
             "(weighted-fair admission, shared persistent pool)",
    )
    v.add_argument("--config", default=None, metavar="ENGINE.json",
                   help="base EngineConfig JSON every tenant inherits "
                        "(default: library defaults; per-tenant 'config' "
                        "entries overlay it)")
    v.add_argument("--tenants", required=True, metavar="TENANTS.json",
                   help="JSON list of tenant objects: name, weight, "
                        "config overlay, and workload knobs "
                        "(family/rules/seed/packets/zipf/flows)")
    v.add_argument("--segment-packets", type=int,
                   default=DEFAULT_SEGMENT_PACKETS, metavar="N",
                   help="packets per admitted stream segment (the "
                        "scheduler interleaves tenants at this grain)")
    v.add_argument("--quantum", type=int, default=None, metavar="PACKETS",
                   help="deficit round-robin quantum in packets per "
                        "weight unit (default: one segment)")
    v.add_argument("-o", "--output", default=None, metavar="REPORT.json",
                   help="write the aggregate EngineReport (with the "
                        "per-tenant slices) as JSON")
    v.set_defaults(fn=cmd_serve)

    s = sub.add_parser(
        "sweep",
        help="run a declarative scenario grid (family x size x backend "
             "x cache x skew x churn) and emit BENCH_sweeps.json",
    )
    s.add_argument("--spec", default=None, metavar="SPEC.json",
                   help="load a SweepSpec JSON instead of a built-in tier")
    s.add_argument("--tier", default="quick", choices=list(TIERS),
                   help="built-in grid tier when no --spec is given: "
                        "quick (PR path), full (nightly grid), soak "
                        "(nightly churn runs)")
    s.add_argument("--quick", action="store_true",
                   help="shrink the selected spec to PR-path size "
                        "(<= 3 sizes, <= 2500 rules, 20k packets)")
    s.add_argument("--filter", action="append", default=[],
                   metavar="AXIS=VALUE[,VALUE...]",
                   help="run only cells matching the axis constraint "
                        "(repeatable; e.g. --filter family=fw1)")
    s.add_argument("-o", "--output", default="BENCH_sweeps.json",
                   help="artifact path (default BENCH_sweeps.json)")
    s.add_argument("--matrix", default=None, metavar="FILE.md",
                   help="write the rendered markdown matrix to a file "
                        "instead of stdout")
    s.add_argument("-v", "--verbose", action="store_true",
                   help="print one progress line per cell")
    s.set_defaults(fn=cmd_sweep)

    l = sub.add_parser(
        "linecard",
        help="run a declarative line-card RX stage graph (parse -> drop "
             "-> extract -> tcam_prefilter -> flow_cache -> classify -> "
             "rewrite -> queue_select) over one Engine session",
    )
    l.add_argument("--graph", default=None, metavar="GRAPH.json",
                   help="StageGraphSpec JSON (StageGraphSpec.save / "
                        "--emit-graph); default: the built-in full "
                        "pipeline with the flags below")
    l.add_argument("--emit-graph", default=None, metavar="FILE.json",
                   help="write the default graph spec (honouring "
                        "--algorithm/--cache-entries) as editable JSON "
                        "and exit")
    l.add_argument("--family", default="acl1",
                   choices=["acl1", "fw1", "ipc1"])
    l.add_argument("--rules", type=int, default=1000)
    l.add_argument("--seed", type=int, default=7)
    l.add_argument("--ruleset-file", default=None,
                   help="load instead of generating")
    l.add_argument("--algorithm", default="hypercuts",
                   choices=_ALGORITHM_CHOICES,
                   help="classify-stage backend for the default graph "
                        "(ignored with --graph: the spec names its own)")
    l.add_argument("--packets", type=int, default=100000)
    l.add_argument("--zipf", type=float, default=None, metavar="SKEW",
                   help="generate a Zipf(SKEW) flow-popularity trace")
    l.add_argument("--flows", type=int, default=1024,
                   help="distinct flows in the Zipf trace (with --zipf)")
    l.add_argument("--trace-file", default=None,
                   help="binary PacketTrace to replay")
    l.add_argument("--trace-lines", default=None, metavar="FILE.txt",
                   help="text trace file fed through the parse stage's "
                        "line ingestion (malformed lines hit the "
                        "quarantine path)")
    l.add_argument("--cache-entries", type=int, default=4096,
                   help="flow_cache stage entries for the default graph "
                        "(0 omits the stage)")
    l.add_argument("--cache-ways", type=int, default=4,
                   help="flow_cache stage associativity")
    l.add_argument("--segment-packets", type=int,
                   default=DEFAULT_SEGMENT_PACKETS, metavar="N",
                   help="packets per pipeline segment")
    l.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="deterministic fault plan (FaultPlan.save); "
                        "stage-targeted specs hit graph stages, the "
                        "rest ride the engine pipeline")
    l.add_argument("-o", "--output", default=None, metavar="REPORT.json",
                   help="write the EngineReport (with per-stage "
                        "telemetry) as JSON")
    l.set_defaults(fn=cmd_linecard)

    t = sub.add_parser("tables", help="regenerate the paper's tables")
    t.add_argument("--quick", action="store_true")
    t.add_argument("--seed", type=int, default=7)
    t.add_argument("-o", "--output", default=None)
    t.set_defaults(fn=cmd_tables)

    f = sub.add_parser("fsm", help="Figure-5 cycle trace")
    _add_workload_args(f, packets=5, algorithms=list(_TREE_ALGORITHMS))
    f.set_defaults(fn=cmd_fsm)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
