"""Engine adapters for backends that need build configuration.

Most classifiers in the library (linear, RFC, TSS, TCAM, incremental)
already construct themselves from a ruleset and satisfy the
:class:`~repro.engine.protocol.Classifier` protocol directly.  The two
adapters here wrap the structures that need a build pipeline:

* :class:`DecisionTreeClassifier` — builds a HiCuts or HyperCuts tree
  (software or grid/hardware mode) and serves lookups through the
  compiled :class:`~repro.algorithms.flat_tree.FlatTree` kernel (the
  tree's ``batch_lookup`` fast path), eagerly compiled at build time;
* :class:`AcceleratorClassifier` — builds the grid-mode tree, places and
  encodes it into the 4800-bit-word memory image, and serves lookups
  through the vectorised accelerator model, reporting per-packet
  occupancy so the pipeline can aggregate throughput and energy.
"""

from __future__ import annotations

import numpy as np

from ..algorithms import DecisionTree, OpCounter, build_hicuts, build_hypercuts
from ..core.errors import ConfigError
from ..core.packet import PacketTrace
from ..core.ruleset import RuleSet
from ..hw import Accelerator, MemoryImage, build_memory_image
from ..hw.memory import DEFAULT_CAPACITY_WORDS
from .protocol import BatchStats, ClassifierBase

_TREE_BUILDERS = {"hicuts": build_hicuts, "hypercuts": build_hypercuts}


def _build_tree(
    ruleset: RuleSet,
    algorithm: str,
    binth: int,
    spfac: float,
    hw_mode: bool,
    ops: OpCounter | None,
) -> DecisionTree:
    try:
        builder = _TREE_BUILDERS[algorithm]
    except KeyError:
        raise ConfigError(
            f"unknown tree algorithm {algorithm!r}; "
            f"expected one of {sorted(_TREE_BUILDERS)}"
        ) from None
    return builder(ruleset, binth=binth, spfac=spfac, hw_mode=hw_mode, ops=ops)


class DecisionTreeClassifier(ClassifierBase):
    """HiCuts/HyperCuts decision tree behind the uniform engine surface."""

    def __init__(
        self,
        ruleset: RuleSet,
        algorithm: str = "hicuts",
        binth: int = 16,
        spfac: float = 4.0,
        hw_mode: bool = False,
        ops: OpCounter | None = None,
        **_ignored,
    ) -> None:
        self.backend_name = algorithm
        self.ruleset = ruleset
        self.schema = ruleset.schema
        self.tree = _build_tree(ruleset, algorithm, binth, spfac, hw_mode, ops)
        # Compile the flat-array kernel eagerly: serving adapters are
        # built once and queried many times (and forked pipeline workers
        # inherit the compiled buffers copy-on-write).
        self.tree.flat
        self.build_ops = ops

    def classify(self, header) -> int:
        return self.tree.classify(header)

    def classify_batch(self, headers: np.ndarray) -> np.ndarray:
        return self.tree.batch_lookup(PacketTrace(headers, self.schema)).match

    def fused_match(self, headers: np.ndarray) -> np.ndarray:
        """Match-only lookup for the fused cache hot path: the lean
        :meth:`~repro.algorithms.flat_tree.FlatTree.batch_match` kernel,
        with no trace wrapper and no statistics bookkeeping.  Results
        are bit-identical to :meth:`classify_batch`."""
        return self.tree.flat.batch_match(headers)

    def memory_bytes(self) -> int:
        return self.tree.software_memory_bytes()

    def memory_accesses_per_lookup(self) -> int:
        return self.tree.stats().worst_case_sw_accesses


class AcceleratorClassifier(ClassifierBase):
    """The paper's hardware accelerator as an engine backend.

    Builds the grid-mode tree with the paper's hardware binth (a leaf
    fills one memory word), encodes the memory image, and classifies with
    the vectorised :class:`~repro.hw.Accelerator` model.  ``batch_stats``
    carries the per-packet occupancy (memory-port cycles), which is what
    the pipeline converts into throughput and energy per packet.
    """

    backend_name = "accelerator"

    def __init__(
        self,
        ruleset: RuleSet,
        algorithm: str = "hypercuts",
        binth: int = 30,
        spfac: float = 4.0,
        speed: int = 1,
        capacity_words: int = DEFAULT_CAPACITY_WORDS,
        ops: OpCounter | None = None,
        **_ignored,
    ) -> None:
        self.ruleset = ruleset
        self.schema = ruleset.schema
        self.algorithm = algorithm
        self.tree = _build_tree(ruleset, algorithm, binth, spfac, True, ops)
        self.image: MemoryImage = build_memory_image(
            self.tree, speed=speed, capacity_words=capacity_words
        )
        self.accelerator = Accelerator(self.image)
        self.build_ops = ops

    def classify(self, header) -> int:
        return self.accelerator.classify(header)

    def classify_batch(self, headers: np.ndarray) -> np.ndarray:
        return self.batch_stats(headers).match

    def batch_stats(self, headers: np.ndarray) -> BatchStats:
        run = self.accelerator.run_trace(PacketTrace(headers, self.schema))
        return BatchStats(match=run.match, occupancy=run.occupancy)

    def run_trace(self, trace: PacketTrace):
        """The full :class:`~repro.hw.AcceleratorRun` (experiment tables)."""
        return self.accelerator.run_trace(trace)

    def memory_bytes(self) -> int:
        return self.image.bytes_used

    def memory_accesses_per_lookup(self) -> int:
        return self.image.worst_case_cycles()
