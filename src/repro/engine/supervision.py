"""Worker supervision: deadlines, crash detection, retry, degradation.

The serving pipeline's fault-tolerance brain.  A
:class:`SupervisionPolicy` (built from
:class:`~repro.serve.EngineConfig`'s ``fault_policy`` /
``max_retries`` / ``chunk_timeout_s`` fields) is handed to
:class:`~repro.engine.pipeline.ClassificationPipeline`, which routes
every dispatch through a :class:`Supervisor`:

* :func:`supervised_map` replaces the blind ``pool.map`` with an
  in-order ``imap`` consumption loop that enforces a **per-chunk
  deadline** and watches the pool's worker processes for **non-zero
  exits** — a crashed worker surfaces as a typed
  :class:`~repro.core.errors.WorkerCrashError` within one poll
  interval instead of hanging ``map`` forever;
* retries use **exponential backoff with seeded jitter**
  (:meth:`Supervisor.backoff_s`) and every fork-tier retry tears the
  pool down and re-forks from the parent — the parent applies update
  batches only *after* a successful dispatch, so a replayed chunk
  re-applies its exact :class:`~repro.core.updates.ScheduledUpdate`
  prefix in the fresh workers and the run stays bit-identical;
* when retries at one tier are exhausted and the policy is
  ``degrade``, the pipeline walks the **degradation ladder**
  ``persistent -> processes -> threads -> inline`` (starting at the
  configured tier) and records every step taken;
* :func:`teardown_pool` bounds pool teardown: ``terminate()`` then a
  per-worker ``join`` deadline, then ``kill()`` for stragglers — a
  hung worker cannot wedge ``close()``, and the shared-memory arena is
  reaped by the pipeline right after.

Everything observed lands in a :class:`FaultReport` carried on
:class:`~repro.engine.pipeline.PipelineResult` (and merged into
:class:`~repro.serve.EngineReport`): retries, chunk replays,
degradations, crash counts per worker, quarantined packets and
recovery latencies.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..core.errors import (
    ArenaCorruptionError,
    ChunkTimeoutError,
    ConfigError,
    IngestError,
    InjectedFault,
    ServingFaultError,
    WorkerCrashError,
)

#: Policies ``fault_policy`` accepts: ``fail`` raises a typed
#: :class:`ServingFaultError` on the first fault, ``retry`` replays the
#: dispatch (bounded, backed off) on the same tier, ``degrade`` retries
#: and then walks the worker-tier ladder downward.
FAULT_POLICIES = ("fail", "retry", "degrade")

#: The worker-tier degradation ladder, most to least capable.  A run
#: starts at its configured tier and, under ``fault_policy="degrade"``,
#: falls to the next rung when retries on the current one are
#: exhausted.  ``inline`` (single-process, per-chunk retry) is the
#: floor — it shares no pool, no fork and no arena with anything.
DEGRADATION_LADDER = ("persistent", "processes", "threads", "inline")

#: Exceptions the supervisor may recover from (everything else — a
#: genuine bug, a ConfigError — propagates untouched).
RECOVERABLE = (
    InjectedFault,
    ArenaCorruptionError,
    WorkerCrashError,
    ChunkTimeoutError,
    IngestError,
)

#: Poll interval of the dispatch monitor loop (seconds).
_POLL_S = 0.02

#: Grace period after observing a worker death, in case its last result
#: was already in flight.
_CRASH_GRACE_S = 0.1


@dataclass(frozen=True)
class SupervisionPolicy:
    """Validated fault-handling policy for one pipeline.

    ``chunk_timeout_s = 0`` disables the deadline (crash detection via
    exit-code watch stays on).  Backoff for retry ``k`` is
    ``backoff_base_s * 2**k`` plus seeded jitter, capped at
    ``backoff_max_s``.
    """

    fault_policy: str = "fail"
    max_retries: int = 2
    chunk_timeout_s: float = 0.0
    backoff_base_s: float = 0.05
    backoff_max_s: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.fault_policy not in FAULT_POLICIES:
            raise ConfigError(
                f"unknown fault_policy {self.fault_policy!r}; "
                f"expected one of {', '.join(FAULT_POLICIES)}"
            )
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.chunk_timeout_s < 0:
            raise ConfigError(
                f"chunk_timeout_s must be >= 0 (0 = no deadline), "
                f"got {self.chunk_timeout_s}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigError("backoff seconds must be >= 0")


@dataclass
class FaultReport:
    """Everything the supervisor observed during one run (or one merged
    streamed session).  All counters are zero on a fault-free run."""

    #: Dispatch retries taken (any tier, any cause).
    retries: int = 0
    #: Chunk dispatches replayed (a retried fork dispatch replays every
    #: chunk of the run; inline/thread retries replay one chunk each).
    replays: int = 0
    #: Ladder steps taken, e.g. ``"persistent->processes:crash"``.
    degradations: list[str] = field(default_factory=list)
    worker_crashes: int = 0
    timeouts: int = 0
    arena_faults: int = 0
    #: Injected (or worker-raised) chunk errors recovered from.
    chunk_errors: int = 0
    update_retries: int = 0
    ingest_retries: int = 0
    #: Malformed trace lines dead-lettered by ingestion quarantine.
    quarantined: int = 0
    #: Crash count per worker label (pid in fork tiers).
    shard_crashes: dict = field(default_factory=dict)
    #: Seconds from each fault's detection to the replacement dispatch
    #: starting (teardown + backoff), one entry per retry/degradation.
    recovery_s: list = field(default_factory=list)

    def record_failure(self, exc: BaseException, shard=None) -> None:
        """Classify one recoverable failure into the counters."""
        if isinstance(exc, WorkerCrashError):
            self.worker_crashes += 1
            label = exc.shard if exc.shard is not None else shard
            if label is not None:
                self.shard_crashes[label] = (
                    self.shard_crashes.get(label, 0) + 1
                )
        elif isinstance(exc, ChunkTimeoutError):
            self.timeouts += 1
        elif isinstance(exc, ArenaCorruptionError):
            self.arena_faults += 1
        elif isinstance(exc, IngestError):
            pass  # counted via ingest_retries at the ingestion site
        else:
            self.chunk_errors += 1

    @property
    def faults(self) -> int:
        """Total faults observed (crashes + timeouts + arena + errors)."""
        return (
            self.worker_crashes
            + self.timeouts
            + self.arena_faults
            + self.chunk_errors
        )

    def any(self) -> bool:
        return bool(
            self.faults
            or self.retries
            or self.degradations
            or self.update_retries
            or self.ingest_retries
            or self.quarantined
        )

    def merge(self, other: "FaultReport") -> None:
        self.retries += other.retries
        self.replays += other.replays
        self.degradations.extend(other.degradations)
        self.worker_crashes += other.worker_crashes
        self.timeouts += other.timeouts
        self.arena_faults += other.arena_faults
        self.chunk_errors += other.chunk_errors
        self.update_retries += other.update_retries
        self.ingest_retries += other.ingest_retries
        self.quarantined += other.quarantined
        for label, count in other.shard_crashes.items():
            self.shard_crashes[label] = (
                self.shard_crashes.get(label, 0) + count
            )
        self.recovery_s.extend(other.recovery_s)

    @classmethod
    def merged(cls, reports) -> "FaultReport | None":
        out: FaultReport | None = None
        for r in reports:
            if r is None:
                continue
            if out is None:
                out = cls()
            out.merge(r)
        return out

    def to_dict(self) -> dict:
        out = {
            "faults": self.faults,
            "retries": self.retries,
            "replays": self.replays,
            "degradations": list(self.degradations),
            "worker_crashes": self.worker_crashes,
            "timeouts": self.timeouts,
            "arena_faults": self.arena_faults,
            "chunk_errors": self.chunk_errors,
            "update_retries": self.update_retries,
            "ingest_retries": self.ingest_retries,
            "quarantined": self.quarantined,
            "shard_crashes": {
                str(k): v for k, v in sorted(self.shard_crashes.items())
            },
        }
        if self.recovery_s:
            out["recovery_s"] = [float(s) for s in self.recovery_s]
            out["recovery_max_s"] = float(max(self.recovery_s))
        return out


class Supervisor:
    """Policy + seeded jitter + failure bookkeeping for one pipeline."""

    def __init__(self, policy: SupervisionPolicy | None = None) -> None:
        self.policy = policy or SupervisionPolicy()
        self._rng = random.Random(self.policy.seed)

    def backoff_s(self, attempt: int) -> float:
        """Exponential backoff with deterministic (seeded) jitter."""
        base = self.policy.backoff_base_s * (2 ** max(0, attempt))
        jitter = 1.0 + 0.25 * self._rng.random()
        return min(self.policy.backoff_max_s, base * jitter)

    def wrap_failure(
        self, exc: BaseException, *, tier: str, chunk=None, shard=None
    ) -> ServingFaultError:
        """Lift any recoverable failure into the typed serving error the
        ``fail`` policy (and exhausted retries) raise."""
        shard = getattr(exc, "shard", None) or shard
        chunk = getattr(exc, "chunk", None) if getattr(
            exc, "chunk", None
        ) is not None else chunk
        return ServingFaultError(
            f"serving fault on tier {tier!r} "
            f"(shard={shard}, chunk={chunk}): {exc}",
            shard=shard,
            chunk=chunk,
            tier=tier,
            cause=exc,
        )


def supervised_map(pool, fn, tasks, *, timeout_s: float = 0.0):
    """In-order ``imap`` over ``tasks`` with a per-chunk deadline and a
    worker exit-code watch.

    Returns the ordered result list, or raises:

    * the worker's own exception (e.g. an injected fault or an arena
      fence trip), as pickled back by the pool;
    * :class:`WorkerCrashError` when a pool worker exits non-zero while
      a chunk is outstanding (``multiprocessing.Pool`` loses the task
      forever in that case — without this watch the dispatch would hang
      indefinitely);
    * :class:`ChunkTimeoutError` when one chunk exceeds ``timeout_s``.

    Transport-layer breakage from a dying pool (pipe EOF, respawned
    workers missing their fork snapshot) is folded into
    :class:`WorkerCrashError` too: after a worker death the pool is a
    write-off either way, and the supervisor's answer — tear down and
    re-fork — is the same.
    """
    import multiprocessing

    procs = list(getattr(pool, "_pool", ()))
    it = pool.imap(fn, tasks)
    out = []
    for i in range(len(tasks)):
        deadline = (
            time.monotonic() + timeout_s if timeout_s > 0 else None
        )
        while True:
            try:
                out.append(it.next(_POLL_S))
                break
            except multiprocessing.TimeoutError:
                dead = [
                    p for p in procs if p.exitcode not in (None, 0)
                ]
                if dead:
                    try:  # the result may have been in flight already
                        out.append(it.next(_CRASH_GRACE_S))
                        break
                    except multiprocessing.TimeoutError:
                        pass
                    raise WorkerCrashError(
                        f"worker pid {dead[0].pid} exited with code "
                        f"{dead[0].exitcode} while chunk {i} was "
                        f"outstanding",
                        shard=dead[0].pid,
                        chunk=i,
                        cause=f"exit:{dead[0].exitcode}",
                    ) from None
                if deadline is not None and time.monotonic() > deadline:
                    raise ChunkTimeoutError(
                        f"chunk {i} exceeded the {timeout_s:.2f}s "
                        f"dispatch deadline",
                        chunk=i,
                        cause="timeout",
                    ) from None
            except RECOVERABLE:
                raise
            except (AssertionError, OSError, EOFError, BrokenPipeError) as exc:
                raise WorkerCrashError(
                    f"worker pool broke while chunk {i} was outstanding: "
                    f"{exc!r}",
                    chunk=i,
                    cause=exc,
                ) from exc
    return out


def teardown_pool(pool, *, deadline_s: float = 5.0) -> None:
    """Terminate ``pool`` and reap its workers within a bounded
    deadline: ``terminate()`` (SIGTERM), per-worker ``join`` slices of
    the remaining budget, then ``kill()`` (SIGKILL) for anything still
    alive — a worker stuck in an uninterruptible state cannot wedge
    ``close()``, and no orphan processes are left behind."""
    procs = list(getattr(pool, "_pool", ()))
    pool.terminate()
    stop_at = time.monotonic() + deadline_s
    for proc in procs:
        budget = stop_at - time.monotonic()
        try:
            if budget > 0:
                proc.join(budget)
            if proc.is_alive():  # pragma: no cover - SIGTERM-immune worker
                proc.kill()
                proc.join(1.0)
        except (OSError, ValueError, AssertionError):
            # Already reaped by the pool's own maintenance thread.
            continue
    pool.join()
