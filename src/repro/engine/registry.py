"""String-keyed backend registry: build any classifier by name.

Every classification engine in the library registers a build-from-ruleset
factory here, so the CLI, the experiment harness, the benchmark suite and
the serving pipeline can all instantiate backends uniformly::

    from repro.engine import build_backend

    clf = build_backend("rfc", ruleset)
    matches = clf.classify_trace(trace)

Factories accept (and ignore) parameters that do not apply to them, so a
single parameter namespace (``binth``, ``spfac``, ``speed``, ...) can be
threaded from the CLI to whichever backend the user named.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..algorithms import (
    IncrementalClassifier,
    LinearSearchClassifier,
    OpCounter,
    RFCClassifier,
    TupleSpaceClassifier,
)
from ..baselines import TcamClassifier
from ..core.errors import ConfigError
from ..core.ruleset import RuleSet
from .backends import AcceleratorClassifier, DecisionTreeClassifier
from .protocol import Classifier

Factory = Callable[..., Classifier]


@dataclass(frozen=True)
class BackendSpec:
    """One registered backend: factory plus CLI-facing metadata."""

    name: str
    factory: Factory
    description: str = ""
    #: Whether the backend builds a decision tree the ``build`` CLI
    #: subcommand can report on (treeless backends error cleanly there).
    builds_tree: bool = False
    aliases: tuple[str, ...] = ()
    extra: dict = field(default_factory=dict)


_REGISTRY: dict[str, BackendSpec] = {}
_ALIASES: dict[str, str] = {}


def register_backend(
    name: str,
    factory: Factory,
    *,
    description: str = "",
    builds_tree: bool = False,
    aliases: tuple[str, ...] = (),
) -> BackendSpec:
    """Register ``factory`` under ``name`` (and ``aliases``)."""
    if name in _REGISTRY or name in _ALIASES:
        raise ConfigError(f"backend {name!r} is already registered")
    for alias in aliases:
        if alias in _REGISTRY or alias in _ALIASES:
            raise ConfigError(f"backend alias {alias!r} is already registered")
    spec = BackendSpec(
        name=name,
        factory=factory,
        description=description,
        builds_tree=builds_tree,
        aliases=aliases,
    )
    _REGISTRY[name] = spec
    for alias in aliases:
        _ALIASES[alias] = name
    return spec


def available_backends() -> tuple[str, ...]:
    """Canonical backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def registered_aliases() -> dict[str, str]:
    """Alias -> canonical-name map (a copy; mutate via register_backend)."""
    return dict(_ALIASES)


def backend_spec(name: str) -> BackendSpec:
    """Resolve ``name`` (or an alias) to its :class:`BackendSpec`."""
    canonical = _ALIASES.get(name, name)
    spec = _REGISTRY.get(canonical)
    if spec is None:
        raise ConfigError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(available_backends())}"
        )
    return spec


def build_backend(name: str, ruleset: RuleSet, **params) -> Classifier:
    """Instantiate the backend registered under ``name`` for ``ruleset``.

    ``params`` is the shared parameter namespace (``binth``, ``spfac``,
    ``hw_mode``, ``speed``, ``algorithm``, ``ops``...); each factory picks
    what applies to it.
    """
    spec = backend_spec(name)
    clf = spec.factory(ruleset, **params)
    if getattr(clf, "backend_name", None) in (None, "classifier"):
        try:
            clf.backend_name = spec.name
        except AttributeError:  # __slots__ classes keep their own label
            pass
    return clf


# ---------------------------------------------------------------------------
# Built-in backends.  Module-level factory functions (not lambdas) so
# they stay picklable for multiprocessing shards.
# ---------------------------------------------------------------------------
def _make_linear(ruleset: RuleSet, **_ignored) -> LinearSearchClassifier:
    return LinearSearchClassifier(ruleset)


def _make_rfc(
    ruleset: RuleSet,
    max_table_entries: int | None = None,
    ops: OpCounter | None = None,
    **_ignored,
) -> RFCClassifier:
    if max_table_entries is None:
        return RFCClassifier(ruleset, ops=ops)
    return RFCClassifier(ruleset, max_table_entries=max_table_entries, ops=ops)


def _make_tuple_space(
    ruleset: RuleSet, ops: OpCounter | None = None, **_ignored
) -> TupleSpaceClassifier:
    return TupleSpaceClassifier(ruleset, ops=ops)


def _make_hicuts(ruleset: RuleSet, **params) -> DecisionTreeClassifier:
    params.pop("algorithm", None)
    return DecisionTreeClassifier(ruleset, algorithm="hicuts", **params)


def _make_hypercuts(ruleset: RuleSet, **params) -> DecisionTreeClassifier:
    params.pop("algorithm", None)
    return DecisionTreeClassifier(ruleset, algorithm="hypercuts", **params)


def _make_incremental(
    ruleset: RuleSet,
    algorithm: str = "hicuts",
    binth: int = 30,
    spfac: float = 4.0,
    hw_mode: bool = True,
    ops: OpCounter | None = None,
    **_ignored,
) -> IncrementalClassifier:
    return IncrementalClassifier(
        ruleset, algorithm=algorithm, binth=binth, spfac=spfac,
        hw_mode=hw_mode, ops=ops,
    )


def _make_tcam(
    ruleset: RuleSet, max_slots: int | None = None, **_ignored
) -> TcamClassifier:
    if max_slots is None:
        return TcamClassifier(ruleset)
    return TcamClassifier(ruleset, max_slots=max_slots)


def _make_accelerator(ruleset: RuleSet, **params) -> AcceleratorClassifier:
    return AcceleratorClassifier(ruleset, **params)


register_backend(
    "linear", _make_linear,
    description="first-match linear scan (the semantic oracle)",
)
register_backend(
    "rfc", _make_rfc,
    description="Recursive Flow Classification (Gupta & McKeown)",
)
register_backend(
    "tuple_space", _make_tuple_space, aliases=("tss",),
    description="tuple space search (Srinivasan, Suri & Varghese)",
)
register_backend(
    "hicuts", _make_hicuts, builds_tree=True,
    description="HiCuts decision tree (software or hw/grid mode)",
)
register_backend(
    "hypercuts", _make_hypercuts, builds_tree=True,
    description="HyperCuts decision tree (software or hw/grid mode)",
)
register_backend(
    "incremental", _make_incremental,
    description="decision tree with in-place rule updates",
)
register_backend(
    "tcam", _make_tcam,
    description="ternary CAM with range-to-prefix expansion",
)
register_backend(
    "accelerator", _make_accelerator, aliases=("hw",),
    description="the paper's hardware accelerator (grid tree + memory image)",
)
