"""The rule-update serving surface of the engine.

Section 4 of the paper splits deployment into a data plane that keeps
classifying and a control plane that mutates its copy of the search
structure.  This module gives the engine that split:

* :class:`UpdatableClassifier` — the protocol extension: a
  :class:`~repro.engine.protocol.Classifier` that additionally applies
  :class:`~repro.core.updates.RuleUpdate` batches with stable-id
  semantics and an ``update_epoch`` version counter.  The incremental
  backend implements it natively (copy-on-write tree surgery plus flat-
  kernel row patching); any other registry backend can serve updates
  through :class:`RebuildUpdatable`.
* :class:`RebuildUpdatable` — the adapter for backends without an
  incremental structure (linear, tuple-space, RFC, TCAM, ...): it owns
  the stable-id rule store, rebuilds the wrapped backend from the live
  rules on every batch, and translates the rebuilt backend's compacted
  ids back to stable ids, so every updatable backend reports identical
  matches.  This is the "full re-sync" end of the paper's control-plane
  cost spectrum — the energy model in :mod:`repro.energy.updates` prices
  exactly this rebuild against the incremental path.
* :func:`build_updatable_backend` — registry composition: the
  incremental backend is returned as-is, everything else is wrapped.

Stable-id semantics (shared with the incremental backend): a freshly
built classifier's rules are ids ``0..n-1``, inserts append, removals
tombstone, ids are never reused.  The per-epoch differential harness in
``tests/test_update_serving.py`` replays interleaved update/classify
schedules against a from-scratch linear oracle at every epoch and
requires exact agreement.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from ..core.rules import Rule
from ..core.ruleset import RuleSet
from ..core.updates import (
    OP_INSERT,
    OP_REMOVE,
    RuleUpdate,
    ScheduledUpdate,
    UpdateResult,
    insert_op,
    remove_op,
)
from .protocol import Classifier, ClassifierBase
from .registry import backend_spec, build_backend

__all__ = [
    "RuleUpdate",
    "ScheduledUpdate",
    "UpdateResult",
    "insert_op",
    "remove_op",
    "UpdatableClassifier",
    "is_updatable",
    "RebuildUpdatable",
    "build_updatable_backend",
]


@runtime_checkable
class UpdatableClassifier(Classifier, Protocol):
    """A classifier that serves live rule updates.

    ``apply_updates`` applies one batch of insert/remove operations and
    advances ``update_epoch`` by one (empty batches included — epochs
    number ruleset *versions*).  Implementations must keep stable-id
    semantics: classification results refer to the id a rule was born
    with, across every later mutation.
    """

    update_epoch: int

    def apply_updates(self, batch: Iterable[RuleUpdate]) -> UpdateResult: ...


def is_updatable(classifier: Classifier) -> bool:
    """Whether ``classifier`` can actually serve update batches.

    Wrappers that merely *delegate* updates (the flow-cached front-end
    marks itself with ``_delegates_updates``) are updatable only when
    the classifier they wrap is — a cached linear scan must be rejected
    up front, not die mid-run inside a forked worker.
    """
    if getattr(classifier, "_delegates_updates", False):
        return is_updatable(classifier.classifier)
    return callable(getattr(classifier, "apply_updates", None))


class RebuildUpdatable(ClassifierBase):
    """Update serving for backends without an incremental structure.

    Owns the control-plane rule store (stable ids, tombstones) and
    rebuilds the wrapped backend from the live rules after every batch.
    The rebuilt backend sees a compacted ruleset, so its match ids are
    translated back through the live-id table — results are then
    comparable packet-for-packet with the incremental backend under the
    same update stream.
    """

    def __init__(self, name: str, ruleset: RuleSet, **params) -> None:
        spec = backend_spec(name)
        self.backend_name = f"{spec.name}+updates"
        self.schema = ruleset.schema
        self._name = spec.name
        self._params = dict(params)
        self._src_name = ruleset.name
        self._rules: list[Rule] = list(ruleset.rules)
        self._live = np.ones(len(self._rules), dtype=bool)
        self.update_epoch = 0
        self.rebuilds = 0
        self._refresh()

    # ------------------------------------------------------------------
    @property
    def n_live_rules(self) -> int:
        return int(self._live.sum())

    def live_ruleset(self) -> RuleSet:
        """The live rules in priority order (ids compacted)."""
        rules = [r for i, r in enumerate(self._rules) if self._live[i]]
        return RuleSet(rules, self.schema, f"{self._src_name}+upd")

    def _refresh(self) -> None:
        self._stable = np.nonzero(self._live)[0].astype(np.int64)
        self.classifier = build_backend(
            self._name, self.live_ruleset(), **self._params
        )
        self.rebuilds += 1

    # ------------------------------------------------------------------
    def apply_updates(self, batch: Iterable[RuleUpdate]) -> UpdateResult:
        inserted = removed = skipped = 0
        ids: list[int] = []
        for op in batch:
            if op.op == OP_INSERT:
                op.rule.validate(self.schema)
                self._rules.append(op.rule)
                self._live = np.append(self._live, True)
                ids.append(len(self._rules) - 1)
                inserted += 1
            elif op.op == OP_REMOVE:
                rid = op.rule_id
                if 0 <= rid < len(self._rules) and self._live[rid]:
                    self._live[rid] = False
                    removed += 1
                else:
                    skipped += 1
        if inserted or removed:
            self._refresh()
        self.update_epoch += 1
        return UpdateResult(
            epoch=self.update_epoch, inserted=inserted, removed=removed,
            skipped=skipped, inserted_ids=tuple(ids),
        )

    # ------------------------------------------------------------------
    def classify_batch(self, headers: np.ndarray) -> np.ndarray:
        compact = np.asarray(self.classifier.classify_batch(headers))
        out = np.full(compact.shape, -1, dtype=np.int64)
        hit = compact >= 0
        out[hit] = self._stable[compact[hit]]
        return out

    def memory_bytes(self) -> int:
        return self.classifier.memory_bytes()

    def memory_accesses_per_lookup(self) -> int:
        return self.classifier.memory_accesses_per_lookup()


def build_updatable_backend(
    name: str, ruleset: RuleSet, **params
) -> Classifier:
    """Build backend ``name`` with the update-serving surface.

    The incremental backend already implements it (and is returned
    unwrapped); every other registered backend is adapted through
    :class:`RebuildUpdatable`.
    """
    spec = backend_spec(name)
    if spec.name == "incremental":
        return build_backend("incremental", ruleset, **params)
    return RebuildUpdatable(spec.name, ruleset, **params)
