"""The uniform classifier contract every engine backend satisfies.

Historically each classifier in the library grew its own ad-hoc surface
(``classify``/``classify_trace``/assorted stats methods) and the CLI and
experiment harness could only reach the two decision-tree variants.  The
engine layer fixes the contract once:

* :class:`Classifier` — a :class:`typing.Protocol` (structural, so the
  existing algorithm classes satisfy it without importing this module);
* :class:`ClassifierBase` — a convenience ABC for engine adapters that
  derives the whole surface from ``classify_batch``;
* :class:`BatchStats` — the per-batch result record the
  :class:`~repro.engine.pipeline.ClassificationPipeline` aggregates;
  backends with a hardware cost model (the accelerator) attach per-packet
  occupancy, everything else reports matches only.

The semantic requirement is unchanged from the rest of the library: every
backend must agree packet-for-packet with the linear-search oracle
(:class:`~repro.algorithms.linear.LinearSearchClassifier`); the
conformance suite in ``tests/test_engine.py`` enforces it across the
whole registry.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.packet import PacketTrace
from ..core.rules import FieldSchema


@dataclass
class BatchStats:
    """Result of classifying one batch of headers.

    ``occupancy`` is the per-packet memory-port cycle count for backends
    that model it (the hardware accelerator); ``None`` elsewhere.
    ``cache_hits``/``cache_misses``/``cache_evictions`` are filled by
    the flow-cache front-end
    (:class:`~repro.engine.flowcache.CachedClassifier`): packets served
    without a backend lookup, backend lookups issued, and entries
    evicted while filling this batch; ``None`` on bare backends.
    """

    match: np.ndarray
    occupancy: np.ndarray | None = None
    cache_hits: int | None = None
    cache_misses: int | None = None
    cache_evictions: int | None = None

    @property
    def n_packets(self) -> int:
        return len(self.match)


@runtime_checkable
class Classifier(Protocol):
    """Structural protocol of a packet classifier backend.

    ``classify_batch`` is the primary, vectorised entry point: it takes an
    ``(n_packets, ndim)`` header matrix and returns the first-match rule
    id per packet (-1 for no match).  ``classify`` is the scalar
    counterpart, ``classify_trace`` the :class:`PacketTrace` convenience.
    ``memory_bytes``/``memory_accesses_per_lookup`` feed the size and
    cost-model comparisons the experiment tables are built from.
    """

    def classify(self, header: Sequence[int]) -> int: ...

    def classify_batch(self, headers: np.ndarray) -> np.ndarray: ...

    def classify_trace(self, trace: PacketTrace) -> np.ndarray: ...

    def memory_bytes(self) -> int: ...

    def memory_accesses_per_lookup(self) -> int: ...


class ClassifierBase(abc.ABC):
    """Adapter base: implement ``classify_batch`` + the stats hooks and
    the rest of the :class:`Classifier` surface comes for free."""

    #: Registry name of the backend (set by adapters for display).
    backend_name: str = "classifier"

    schema: FieldSchema

    @abc.abstractmethod
    def classify_batch(self, headers: np.ndarray) -> np.ndarray:
        """First-match rule id per header row (-1 when nothing matches)."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Modelled storage footprint of the search structure."""

    @abc.abstractmethod
    def memory_accesses_per_lookup(self) -> int:
        """Worst-case memory accesses one lookup can incur."""

    # ------------------------------------------------------------------
    def classify(self, header: Sequence[int]) -> int:
        row = np.asarray([[int(v) for v in header]], dtype=np.uint32)
        return int(self.classify_batch(row)[0])

    def classify_trace(self, trace: PacketTrace) -> np.ndarray:
        return self.classify_batch(trace.headers)

    def batch_stats(self, headers: np.ndarray) -> BatchStats:
        """Matches plus whatever cost statistics the backend models."""
        return BatchStats(match=self.classify_batch(headers))


def batch_stats_of(classifier: Classifier, headers: np.ndarray) -> BatchStats:
    """Uniform stats entry point for any :class:`Classifier`.

    Backends that implement ``batch_stats`` (engine adapters, notably the
    accelerator with its occupancy model) are used directly; plain
    protocol implementers are wrapped.
    """
    stats_fn = getattr(classifier, "batch_stats", None)
    if callable(stats_fn):
        return stats_fn(headers)
    return BatchStats(match=classifier.classify_batch(headers))


def warm_batch_state(classifier: Classifier, ndim: int) -> None:
    """Materialise every lazily-built batch structure of ``classifier``.

    Classifying an empty batch forces compiled flat-tree kernels, probe
    tables and similar caches into existence.  The pipeline calls this in
    the parent before forking worker shards, so the children inherit the
    built structures copy-on-write instead of each rebuilding them.
    """
    batch_stats_of(classifier, np.empty((0, ndim), dtype=np.uint32))
