"""Unified classifier engine: one protocol, a backend registry, and a
sharded streaming pipeline.

::

    from repro.engine import build_backend, ClassificationPipeline

    clf = build_backend("accelerator", ruleset, algorithm="hypercuts")
    result = ClassificationPipeline(clf, shards=4).run(trace)
    print(result.throughput_pps(), result.mean_occupancy())

See ``docs/engine.md`` for the architecture overview.
"""

from .backends import AcceleratorClassifier, DecisionTreeClassifier
from .faults import (
    CRASH_EXIT_CODE,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)
from .flowcache import (
    HIT_OCCUPANCY_CYCLES,
    CachedClassifier,
    FlowCache,
    FlowCacheStats,
    build_cached_backend,
)
from .pipeline import (
    DEFAULT_CHUNK_SIZE,
    ChunkStats,
    ClassificationPipeline,
    PipelineResult,
)
from .protocol import (
    BatchStats,
    Classifier,
    ClassifierBase,
    batch_stats_of,
    warm_batch_state,
)
from .registry import (
    BackendSpec,
    available_backends,
    backend_spec,
    build_backend,
    register_backend,
    registered_aliases,
)
from .supervision import (
    DEGRADATION_LADDER,
    FAULT_POLICIES,
    FaultReport,
    SupervisionPolicy,
    Supervisor,
)
from .updates import (
    RebuildUpdatable,
    RuleUpdate,
    ScheduledUpdate,
    UpdatableClassifier,
    UpdateResult,
    build_updatable_backend,
    insert_op,
    is_updatable,
    remove_op,
)

__all__ = [
    "RebuildUpdatable",
    "RuleUpdate",
    "ScheduledUpdate",
    "UpdatableClassifier",
    "UpdateResult",
    "build_updatable_backend",
    "insert_op",
    "is_updatable",
    "remove_op",
    "AcceleratorClassifier",
    "DecisionTreeClassifier",
    "HIT_OCCUPANCY_CYCLES",
    "CachedClassifier",
    "FlowCache",
    "FlowCacheStats",
    "build_cached_backend",
    "DEFAULT_CHUNK_SIZE",
    "ChunkStats",
    "ClassificationPipeline",
    "PipelineResult",
    "BatchStats",
    "Classifier",
    "ClassifierBase",
    "batch_stats_of",
    "warm_batch_state",
    "BackendSpec",
    "available_backends",
    "backend_spec",
    "build_backend",
    "register_backend",
    "registered_aliases",
    "CRASH_EXIT_CODE",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "DEGRADATION_LADDER",
    "FAULT_POLICIES",
    "FaultReport",
    "SupervisionPolicy",
    "Supervisor",
]
