"""Exact-match flow-cache front-end for any engine backend.

The paper's introduction assumes the classic serving deployment: a flow
cache absorbs the hot traffic and the general classifier only sees cache
misses — that split is where the energy argument lives.  This module
reproduces the layer in the simulator:

* :class:`FlowCache` — a vectorised, fixed-size, set-associative
  exact-match table.  Full headers are FNV-hashed into one of
  ``entries // ways`` sets; each set holds ``ways`` (header, result)
  entries with LRU-ish replacement driven by a monotonic use stamp.
  All probe/fill work is NumPy over the whole batch — no per-packet
  Python.
* :class:`CachedClassifier` — wraps any
  :class:`~repro.engine.protocol.Classifier` behind the same protocol,
  so the cached form composes with the registry, the sharded
  :class:`~repro.engine.pipeline.ClassificationPipeline` and the CLI
  exactly like a bare backend.  Results are bit-identical to the
  wrapped backend by construction: the cache only ever stores results
  the backend itself produced, keyed by the *full* header.

Batch semantics: within one batch the cache is probed once against its
state at batch start; the missing headers are deduplicated, classified
by the backend once per distinct header, and filled back.  Duplicate
misses inside a batch therefore coalesce into one backend lookup — the
vectorised equivalent of the sequential "first packet misses and fills,
the rest hit" behaviour — and are counted as hits.  A zero-entry cache
bypasses entirely (every packet is a backend miss, no coalescing).

Sharding: each pipeline worker forks with a copy-on-write snapshot of
the cache, so a sharded run maintains one private cache per shard (the
hardware-natural layout); a persistent pool keeps the per-shard caches
warm across ``run()`` calls.  Per-chunk hit/miss counts travel back
through :class:`~repro.engine.protocol.BatchStats` and are aggregated
by the pipeline.

Rule updates invalidate: :meth:`CachedClassifier.insert` / ``remove`` /
``rebuild`` delegate to the wrapped classifier (the incremental
backend) and then flush the cache, so the serving process never returns
stale results after the ruleset changes.  The persistent-pool caveat on
:class:`~repro.engine.pipeline.ClassificationPipeline` applies to the
cache exactly as it does to the classifier itself: a long-lived pool's
workers hold the copy-on-write snapshot taken at fork time, so call
``pipeline.close()`` after any mutation — the next ``run()`` re-forks
from the updated (and freshly invalidated) state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigError
from ..core.ruleset import RuleSet
from .protocol import BatchStats, Classifier, ClassifierBase, batch_stats_of
from .registry import build_backend

#: Memory-port cycles charged to a cache-hit lookup when the wrapped
#: backend models per-packet occupancy: one set-wide probe, the same
#: single-cycle cost the accelerator pays for one memory word.
HIT_OCCUPANCY_CYCLES = 1

_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_FNV_PRIME = np.uint64(0x100000001B3)


@dataclass
class FlowCacheStats:
    """Running counters of one :class:`FlowCache`.

    ``hits`` counts packets served without a backend lookup (including
    intra-batch duplicates coalesced onto one miss); ``misses`` counts
    backend lookups issued.  ``hits + misses == lookups``.

    ``evictions`` counts live entries overwritten by a fill;
    ``reclamations`` counts dead slots (TTL-expired, epoch-stale, or
    both at once) re-used by a fill.  A slot that is expired *and*
    stale is dead exactly once, so every fill bumps exactly one of the
    two counters per overwritten valid slot.
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    reclamations: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class FlowCache:
    """Fixed-size set-associative exact-match cache over full headers.

    ``entries == 0`` disables the cache (every lookup is a miss).
    Tables are allocated lazily on the first probe, when the header
    width is known, so the cache works with any
    :class:`~repro.core.rules.FieldSchema`.

    ``max_age`` enables TTL-style aging: an entry is only served while
    fewer than ``max_age`` lookups have passed through the cache since
    it was *filled* (hits refresh the LRU stamp, not the fill time, so
    a hot flow is still re-validated against the backend every
    ``max_age`` lookups — the standard defence against a stale flow
    table).  Expired entries miss and become preferred eviction victims;
    overwriting one is reclamation, not eviction.  ``max_age=0``
    disables aging.
    """

    def __init__(
        self, entries: int = 4096, ways: int = 4, max_age: int = 0
    ) -> None:
        if entries < 0:
            raise ConfigError(f"cache entries must be >= 0, got {entries}")
        if entries:
            if ways < 1:
                raise ConfigError(f"cache ways must be >= 1, got {ways}")
            if entries % ways:
                raise ConfigError(
                    f"cache entries ({entries}) must be a multiple of "
                    f"ways ({ways})"
                )
        if max_age < 0:
            raise ConfigError(
                f"cache max_age must be >= 0 (0 = no aging), got {max_age}"
            )
        self.entries = int(entries)
        self.ways = int(ways)
        self.max_age = int(max_age)
        self.n_sets = self.entries // self.ways if entries else 0
        self.stats = FlowCacheStats()
        self._tick = np.int64(1)
        #: Current ruleset epoch.  Entries are tagged with the epoch they
        #: were filled under and only served while it is current, so a
        #: rule update invalidates the whole cache in O(1) — one counter
        #: bump (:meth:`advance_epoch`) instead of an O(entries) flush.
        self.epoch = np.int64(0)
        self._keys: np.ndarray | None = None  # (sets, ways, ndim) uint32
        self._valid: np.ndarray | None = None  # (sets, ways) bool
        self._result: np.ndarray | None = None  # (sets, ways) int64
        self._stamp: np.ndarray | None = None  # (sets, ways) int64 last use
        self._epoch: np.ndarray | None = None  # (sets, ways) int64 fill tag
        self._filled: np.ndarray | None = None  # (sets, ways) int64 fill tick

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.entries > 0

    def _ensure_tables(self, ndim: int) -> None:
        if self._keys is None or self._keys.shape[2] != ndim:
            self._keys = np.zeros((self.n_sets, self.ways, ndim), np.uint32)
            self._valid = np.zeros((self.n_sets, self.ways), bool)
            self._result = np.full((self.n_sets, self.ways), -1, np.int64)
            self._stamp = np.zeros((self.n_sets, self.ways), np.int64)
            self._epoch = np.full((self.n_sets, self.ways), -1, np.int64)
            self._filled = np.zeros((self.n_sets, self.ways), np.int64)

    def _live(self, sets: np.ndarray) -> np.ndarray:
        """Valid entries whose fill epoch is still current (and, with
        aging on, whose fill is younger than ``max_age`` lookups)."""
        live = self._valid[sets] & (self._epoch[sets] == self.epoch)
        if self.max_age:
            live &= (self._tick - self._filled[sets]) <= np.int64(self.max_age)
        return live

    def _set_index(self, headers: np.ndarray) -> np.ndarray:
        """FNV-1a over the header columns, folded modulo the set count."""
        h = np.full(headers.shape[0], _FNV_OFFSET, np.uint64)
        for d in range(headers.shape[1]):
            h = (h ^ headers[:, d].astype(np.uint64)) * _FNV_PRIME
        h ^= h >> np.uint64(33)  # fold the high bits into the modulo
        return (h % np.uint64(self.n_sets)).astype(np.int64)

    # ------------------------------------------------------------------
    def probe(self, headers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Look every header up against the current cache state.

        Returns ``(hit, result)``: a boolean hit mask and the cached
        first-match rule id where hit (undefined elsewhere).  Hit
        entries get their LRU stamp refreshed, later batch positions
        counting as fresher.  On a disabled (zero-entry) cache every
        probe misses.
        """
        if not self.enabled or not headers.shape[0]:
            n = headers.shape[0]
            return np.zeros(n, bool), np.full(n, -1, np.int64)
        self._ensure_tables(headers.shape[1])
        s = self._set_index(headers)
        cand = self._keys[s]  # (n, ways, ndim) gather
        eq = (cand == headers[:, None, :]).all(axis=2) & self._live(s)
        hit = eq.any(axis=1)
        way = np.argmax(eq, axis=1)
        result = np.where(hit, self._result[s, way], np.int64(-1))
        pos = np.nonzero(hit)[0]
        self._stamp[s[pos], way[pos]] = self._tick + pos
        self._tick += np.int64(headers.shape[0])
        return hit, result

    def fill(self, headers: np.ndarray, results: np.ndarray) -> None:
        """Insert (header -> result) pairs, LRU-evicting within sets.

        ``headers`` rows should be distinct (the caller deduplicates
        misses).  When more distinct headers land in one set than it
        has ways, the later ones wrap onto the same victim slots —
        last writer wins, exactly what a small cache under thrash does.
        """
        n = headers.shape[0]
        if not self.enabled or not n:
            return
        self._ensure_tables(headers.shape[1])
        s = self._set_index(headers)
        touched, inv = np.unique(s, return_inverse=True)
        inv = inv.reshape(-1)
        # Ways of each touched set ordered oldest-first; invalid ways and
        # stale-epoch leftovers are preferred victims.
        age = np.where(self._live(touched), self._stamp[touched], np.int64(-1))
        order = np.argsort(age, axis=1, kind="stable")
        # Occurrence rank of each insert within its set.
        by_set = np.argsort(inv, kind="stable")
        counts = np.bincount(inv)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        rank = np.empty(n, np.int64)
        rank[by_set] = np.arange(n) - np.repeat(starts, counts)
        way = order[inv, rank % self.ways]
        # Overwriting a live entry is an eviction; re-using a dead slot
        # (TTL-expired, epoch-stale, or both — dead is dead, counted
        # once) is a reclamation.  Wrap inserts (rank >= ways) land on a
        # slot a batch-mate just claimed, so whatever the pre-batch
        # state said, they displace a fresh live fill: an eviction.
        pre_live = self._live(s)[np.arange(n), way]
        pre_valid = self._valid[s, way]
        first_claim = rank < self.ways
        self.stats.evictions += int(
            np.where(first_claim, pre_live, True).sum()
        )
        self.stats.reclamations += int(
            (first_claim & pre_valid & ~pre_live).sum()
        )
        self._keys[s, way] = headers
        self._valid[s, way] = True
        self._result[s, way] = results
        self._stamp[s, way] = self._tick  # fresher than this batch's hits
        self._epoch[s, way] = self.epoch
        self._filled[s, way] = self._tick
        self._tick += np.int64(1)

    def warm(self, headers: np.ndarray, results: np.ndarray) -> None:
        """Pre-fill from the (header, result) pairs of a finished run.

        Takes the most recent distinct flows (bounded to a few multiples
        of the cache capacity, so warming a long trace stays O(cache)),
        deduplicates them and fills normally — the next run starts warm
        instead of cold.  Lookup/hit/miss and eviction/reclamation
        counters are untouched: a warm is bookkeeping between runs, not
        serving traffic.
        """
        n = headers.shape[0]
        if not self.enabled or not n:
            return
        tail = min(n, 4 * self.entries)
        uniq, idx = np.unique(
            headers[n - tail:], axis=0, return_index=True
        )
        evictions, reclamations = (
            self.stats.evictions, self.stats.reclamations
        )
        self.fill(
            uniq, np.asarray(results[n - tail:], dtype=np.int64)[idx]
        )
        self.stats.evictions, self.stats.reclamations = (
            evictions, reclamations
        )

    def invalidate(self) -> None:
        """Eagerly drop every entry; counters are kept.

        :meth:`advance_epoch` is the O(1) serving-path variant — use
        this one only when the eager flush itself is the point (tests,
        memory scrubbing).
        """
        if self._valid is not None:
            self._valid[:] = False
            self._result[:] = -1
        self.stats.invalidations += 1

    def advance_epoch(self) -> None:
        """O(1) whole-cache invalidation (the rule-update hook).

        Entries filled under earlier epochs stop matching immediately;
        their slots are reclaimed lazily as new fills land.
        """
        self.epoch += np.int64(1)
        self.stats.invalidations += 1

    # ------------------------------------------------------------------
    def occupancy_fraction(self) -> float:
        """Fraction of cache slots holding a live, unexpired entry."""
        if self._valid is None or not self.entries:
            return 0.0
        live = self._valid & (self._epoch == self.epoch)
        if self.max_age:
            live &= (self._tick - self._filled) <= np.int64(self.max_age)
        return float(live.mean())

    def memory_bytes(self, ndim: int = 5) -> int:
        """Modelled footprint: key + result + stamp + epoch + valid
        (+ the fill-time stamp when aging is enabled)."""
        if self._keys is not None:
            ndim = self._keys.shape[2]
        age_stamp = 8 if self.max_age else 0
        return self.entries * (4 * ndim + 8 + 8 + 8 + 1 + age_stamp)


class CachedClassifier(ClassifierBase):
    """A flow cache in front of any engine backend, same protocol.

    The wrapped backend remains the source of truth: every result the
    cache serves was produced by the backend for that exact header, so
    the cached classifier is bit-identical to the bare one on any trace
    — the conformance suite asserts it across the whole registry.
    """

    def __init__(
        self,
        classifier: Classifier,
        entries: int = 4096,
        ways: int = 4,
        max_age: int = 0,
        fused: bool = True,
    ) -> None:
        self.classifier = classifier
        self.cache = FlowCache(entries, ways=ways, max_age=max_age)
        inner = getattr(classifier, "backend_name", type(classifier).__name__)
        self.backend_name = f"{inner}+cache"
        schema = getattr(classifier, "schema", None)
        if schema is not None:
            self.schema = schema
        #: Serve misses through the backend's ``fused_match`` hook (the
        #: lean match-only kernel) when it offers one.  ``fused=False``
        #: is the escape hatch back to the generic probe-then-traverse
        #: path; both produce bit-identical matches and cache state.
        self.fused = fused
        #: Per-stage wall-clock accumulator for ``bench --profile``:
        #: assign a dict and the hot path adds ``probe_s`` /
        #: ``traverse_s`` / ``scatter_s`` / ``fill_s`` into it.  ``None``
        #: (the default) keeps the hot path timer-free.
        self.profile: dict | None = None
        #: Whether the wrapped backend models per-packet occupancy;
        #: learned on the first backend call so all-hit chunks still
        #: report a consistent occupancy shape.
        self._models_occupancy: bool | None = None

    # ------------------------------------------------------------------
    def clone(self) -> "CachedClassifier":
        """A new wrapper around the *same* backend with a private, cold
        cache — the per-shard cache layout for the thread-pool tier."""
        return CachedClassifier(
            self.classifier,
            entries=self.cache.entries,
            ways=self.cache.ways,
            max_age=self.cache.max_age,
            fused=self.fused,
        )

    # ------------------------------------------------------------------
    def classify_batch(self, headers: np.ndarray) -> np.ndarray:
        return self.batch_stats(headers).match

    def classify_fused(self, headers: np.ndarray) -> np.ndarray:
        """The fused probe→walk→scatter→fill pipeline, explicitly.

        Requires a backend exposing ``fused_match`` (the tree-backed
        classifiers); raises :class:`~repro.core.errors.ConfigError`
        otherwise, where :meth:`batch_stats` would silently fall back.
        """
        fused_fn = getattr(self.classifier, "fused_match", None)
        if not callable(fused_fn):
            raise ConfigError(
                f"backend {getattr(self.classifier, 'backend_name', '?')!r} "
                "has no fused_match kernel; use classify_batch for the "
                "generic probe-then-traverse path"
            )
        return self._serve_batch(
            np.ascontiguousarray(headers, dtype=np.uint32), fused_fn
        ).match

    def batch_stats(self, headers: np.ndarray) -> BatchStats:
        headers = np.ascontiguousarray(headers, dtype=np.uint32)
        fused_fn = (
            getattr(self.classifier, "fused_match", None)
            if self.fused else None
        )
        return self._serve_batch(
            headers, fused_fn if callable(fused_fn) else None
        )

    def _serve_batch(self, headers: np.ndarray, fused_fn) -> BatchStats:
        n = headers.shape[0]
        cache = self.cache
        if n == 0 or not cache.enabled:
            inner = batch_stats_of(self.classifier, headers)
            self._models_occupancy = inner.occupancy is not None
            return BatchStats(
                match=inner.match,
                occupancy=inner.occupancy,
                cache_hits=0,
                cache_misses=n,
                cache_evictions=0,
            )
        prof = self.profile
        t0 = time.perf_counter() if prof is not None else 0.0
        evictions_before = cache.stats.evictions
        hit, match = cache.probe(headers)
        miss_rows = np.nonzero(~hit)[0]
        if prof is not None:
            t1 = time.perf_counter()
            prof["probe_s"] = prof.get("probe_s", 0.0) + (t1 - t0)
            t0 = t1
        occupancy = None
        if miss_rows.size:
            # Deduplicate the misses (identical eviction/fill order in
            # the fused and unfused paths — ``np.unique`` fixes it).
            uniq, inverse = np.unique(
                headers[miss_rows], axis=0, return_inverse=True
            )
            inverse = inverse.reshape(-1)
            n_backend = uniq.shape[0]
            if fused_fn is not None:
                # Fused hot path: one lean match-only walk over the
                # deduplicated misses, no trace wrapper, no stats
                # arrays.  Tree backends never model occupancy.
                inner_match = np.asarray(fused_fn(uniq), dtype=np.int64)
                self._models_occupancy = False
                if prof is not None:
                    t1 = time.perf_counter()
                    prof["traverse_s"] = (
                        prof.get("traverse_s", 0.0) + (t1 - t0)
                    )
                    t0 = t1
                match[miss_rows] = inner_match[inverse]
                if prof is not None:
                    t1 = time.perf_counter()
                    prof["scatter_s"] = (
                        prof.get("scatter_s", 0.0) + (t1 - t0)
                    )
                    t0 = t1
                cache.fill(uniq, inner_match)
                if prof is not None:
                    t1 = time.perf_counter()
                    prof["fill_s"] = prof.get("fill_s", 0.0) + (t1 - t0)
            else:
                inner = batch_stats_of(self.classifier, uniq)
                self._models_occupancy = inner.occupancy is not None
                if prof is not None:
                    t1 = time.perf_counter()
                    prof["traverse_s"] = (
                        prof.get("traverse_s", 0.0) + (t1 - t0)
                    )
                    t0 = t1
                match[miss_rows] = inner.match[inverse]
                if inner.occupancy is not None:
                    occupancy = np.full(n, HIT_OCCUPANCY_CYCLES, np.int64)
                    occupancy[miss_rows] = inner.occupancy[inverse]
                if prof is not None:
                    t1 = time.perf_counter()
                    prof["scatter_s"] = (
                        prof.get("scatter_s", 0.0) + (t1 - t0)
                    )
                    t0 = t1
                cache.fill(uniq, np.asarray(inner.match, dtype=np.int64))
                if prof is not None:
                    t1 = time.perf_counter()
                    prof["fill_s"] = prof.get("fill_s", 0.0) + (t1 - t0)
        else:
            n_backend = 0
            if self._models_occupancy:
                occupancy = np.full(n, HIT_OCCUPANCY_CYCLES, np.int64)
        hits = n - n_backend
        cache.stats.lookups += n
        cache.stats.hits += hits
        cache.stats.misses += n_backend
        return BatchStats(
            match=match,
            occupancy=occupancy,
            cache_hits=hits,
            cache_misses=n_backend,
            cache_evictions=cache.stats.evictions - evictions_before,
        )

    # ------------------------------------------------------------------
    def warm_from_run(
        self, headers: np.ndarray, match: np.ndarray
    ) -> None:
        """Pre-warm this process's cache from a finished run's results
        (the pipeline calls it after forked runs, whose per-shard fills
        happened in worker processes and never reached this copy)."""
        self.cache.warm(
            np.ascontiguousarray(headers, dtype=np.uint32), match
        )

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        ndim = getattr(getattr(self, "schema", None), "ndim", 5)
        return self.classifier.memory_bytes() + self.cache.memory_bytes(ndim)

    def memory_accesses_per_lookup(self) -> int:
        """Worst case: one set-wide probe plus the backend's worst case."""
        probe = 1 if self.cache.enabled else 0
        return probe + self.classifier.memory_accesses_per_lookup()

    # -- rule-update hooks (incremental backends) ----------------------
    #: This wrapper only *delegates* updates: ``is_updatable`` recurses
    #: into the wrapped classifier instead of trusting the method below.
    _delegates_updates = True

    @property
    def update_epoch(self) -> int:
        """The wrapped classifier's ruleset version (0 if not updatable)."""
        return getattr(self.classifier, "update_epoch", 0)

    def apply_updates(self, batch):
        """Delegate the batch, then epoch-invalidate the cache in O(1).

        Entries filled under earlier epochs stop matching the moment the
        cache's epoch advances — no O(entries) flush on the serving
        path; stale slots are reclaimed lazily by later fills.
        """
        inner = getattr(self.classifier, "apply_updates", None)
        if not callable(inner):
            raise ConfigError(
                f"wrapped backend "
                f"{getattr(self.classifier, 'backend_name', '?')!r} does "
                "not serve rule updates; wrap an updatable classifier "
                "(see repro.engine.updates.build_updatable_backend)"
            )
        out = inner(batch)
        self.cache.advance_epoch()
        return out

    def invalidate_cache(self) -> None:
        """Invalidate after an out-of-band ruleset mutation (O(1))."""
        self.cache.advance_epoch()

    def insert(self, rule):
        """Delegate to the wrapped classifier, then epoch-invalidate."""
        out = self.classifier.insert(rule)
        self.cache.advance_epoch()
        return out

    def remove(self, rule_id: int):
        """Delegate to the wrapped classifier, then epoch-invalidate."""
        out = self.classifier.remove(rule_id)
        self.cache.advance_epoch()
        return out

    def rebuild(self) -> None:
        """Delegate to the wrapped classifier, then epoch-invalidate."""
        self.classifier.rebuild()
        self.cache.advance_epoch()


def build_cached_backend(
    name: str,
    ruleset: RuleSet,
    *,
    cache_entries: int = 4096,
    cache_ways: int = 4,
    cache_max_age: int = 0,
    **params,
) -> CachedClassifier:
    """Registry composition: build backend ``name`` and wrap it."""
    return CachedClassifier(
        build_backend(name, ruleset, **params),
        entries=cache_entries,
        ways=cache_ways,
        max_age=cache_max_age,
    )
