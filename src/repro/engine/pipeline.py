"""Sharded streaming classification pipeline — the serving harness.

A :class:`ClassificationPipeline` streams a :class:`~repro.core.packet.
PacketTrace` through a classifier in fixed-size chunks, optionally fanned
out over N worker shards, and aggregates per-chunk statistics into one
:class:`PipelineResult`:

* matches are concatenated in trace order, so the pipeline output is
  bit-for-bit identical to a single-shot ``classify_trace`` at every
  shard count (the conformance suite asserts this);
* backends that model hardware cost (the accelerator) contribute
  per-packet occupancy, which the result converts into device throughput
  and energy per packet via the :mod:`repro.energy` models;
* wall-clock throughput of the *simulation itself* is reported so the
  benchmark suite can track the serving path.

Sharding uses ``fork``-based multiprocessing when the platform offers it
(the built classifier and the trace are inherited copy-on-write, so
nothing large is pickled); elsewhere — or with ``shards=1`` — it falls
back to chunked single-process streaming with identical results.

Two fork modes exist:

* *transient* (default) — a fresh pool per ``run()``; the classifier and
  the trace are inherited copy-on-write, chunk results come back pickled
  through the pool;
* *persistent* (``persistent=True``) — one pool is forked on first use
  and reused across ``run()`` calls, amortising fork + warm-up cost over
  a serving session.  Per run, the trace is published to the workers
  through ``multiprocessing.shared_memory`` and each worker writes its
  match/occupancy slice straight into shared output buffers — the only
  pickled traffic is per-chunk scalars, i.e. a zero-copy result path.
  Results are bit-identical to the other modes at every shard count.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.errors import ConfigError
from ..core.packet import PacketTrace
from .protocol import BatchStats, Classifier, batch_stats_of, warm_batch_state

#: Default packets per chunk: large enough to amortise NumPy dispatch,
#: small enough that per-chunk stats stay meaningful for live reporting.
DEFAULT_CHUNK_SIZE = 4096

#: Module global holding (classifier, headers) across a ``fork`` so
#: worker shards inherit them copy-on-write instead of via pickling.
#: ``headers`` is ``None`` for persistent pools (the trace then arrives
#: through shared memory instead).
_SHARD_STATE: tuple[Classifier, np.ndarray | None] | None = None

#: One processed chunk: (match, occupancy | None,
#: (hits, misses, evictions) | None).  The cache triple is present only
#: when the classifier is a flow-cached front-end (see
#: :mod:`repro.engine.flowcache`).
ChunkOutput = tuple[
    np.ndarray, np.ndarray | None, tuple[int, int, int] | None
]


def _run_chunk(bounds: tuple[int, int]) -> ChunkOutput:
    assert _SHARD_STATE is not None
    classifier, headers = _SHARD_STATE
    return _run_chunk_local(classifier, headers, bounds)


def _run_chunk_shm(task) -> tuple[bool, tuple[int, int, int] | None]:
    """Persistent-pool worker: classify one chunk, write results into the
    shared output buffers, return only whether occupancy was modelled
    plus the chunk's flow-cache hit/miss pair (the parent aggregates
    everything else from the shared arrays).

    Segments are attached per task and closed before returning, so an
    idle worker never pins a previous run's (parent-unlinked) segments;
    an attach is a ``shm_open`` + ``mmap``, microseconds next to a
    chunk's classification.  Attaching re-registers the name with the
    resource tracker, but the workers are forked *after* the parent has
    started the tracker (see ``ClassificationPipeline._ensure_pool``),
    so parent and workers share one tracker process and the duplicate
    registration is a set no-op — the parent's unlink after each run
    remains the single owner of the segment lifecycle.
    """
    from multiprocessing import shared_memory

    in_name, shape, dtype, out_name, occ_name, bounds = task
    assert _SHARD_STATE is not None
    classifier = _SHARD_STATE[0]
    n = shape[0]
    start, end = bounds
    segments = []

    def _attach(name: str):
        shm = shared_memory.SharedMemory(name=name)
        segments.append(shm)
        return shm

    try:
        headers = np.ndarray(shape, dtype=dtype, buffer=_attach(in_name).buf)
        match, occ, cache = _run_chunk_local(classifier, headers, bounds)
        has_occ = occ is not None
        np.ndarray((n,), np.int64, buffer=_attach(out_name).buf)[
            start:end
        ] = match
        if has_occ:
            np.ndarray((n,), np.int64, buffer=_attach(occ_name).buf)[
                start:end
            ] = occ
        # Drop the ndarray views before closing their backing segments.
        del headers, match, occ
    finally:
        for shm in segments:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - error-path views
                pass  # the view dies with this task's frame anyway
    return has_occ, cache


@dataclass(frozen=True)
class ChunkStats:
    """Aggregate statistics for one processed chunk.

    ``cache_hits``/``cache_misses``/``cache_evictions`` are filled when
    the classifier is a flow-cached front-end; ``None`` on bare
    backends.
    """

    index: int
    start: int
    n_packets: int
    matched: int
    occupancy_sum: int | None = None
    cache_hits: int | None = None
    cache_misses: int | None = None
    cache_evictions: int | None = None

    @property
    def matched_fraction(self) -> float:
        return self.matched / self.n_packets if self.n_packets else 0.0


@dataclass
class PipelineResult:
    """Trace-order matches plus aggregated serving statistics.

    ``n_shards`` is the number of worker processes that *actually ran*:
    1 whenever the single-process fallback served the trace (no ``fork``
    on the platform, a single chunk, or ``shards=1``), else the forked
    pool size after clamping to chunk and CPU counts.
    """

    match: np.ndarray
    chunks: list[ChunkStats]
    n_shards: int
    chunk_size: int
    elapsed_s: float
    backend: str = "classifier"
    occupancy: np.ndarray | None = field(default=None, repr=False)
    #: Flow-cache totals over all chunks (``None`` on bare backends).
    #: Counts come back from whichever process served each chunk, so
    #: they are correct in forked/persistent modes too.
    cache_hits: int | None = None
    cache_misses: int | None = None
    cache_evictions: int | None = None

    @property
    def n_packets(self) -> int:
        return len(self.match)

    @property
    def matched(self) -> int:
        return int((self.match >= 0).sum())

    @property
    def matched_fraction(self) -> float:
        return self.matched / self.n_packets if self.n_packets else 0.0

    def throughput_pps(self) -> float:
        """Simulation wall-clock packets/second through the pipeline."""
        return self.n_packets / self.elapsed_s if self.elapsed_s > 0 else 0.0

    # -- flow-cache aggregation (cached front-ends) ---------------------
    @property
    def cache_lookups(self) -> int | None:
        """Total lookups through the flow cache (hits + backend misses)."""
        if self.cache_hits is None or self.cache_misses is None:
            return None
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float | None:
        """Fraction of packets served without a backend lookup."""
        lookups = self.cache_lookups
        if lookups is None:
            return None
        return self.cache_hits / lookups if lookups else 0.0

    # -- hardware cost aggregation (accelerator-backed pipelines) -------
    def mean_occupancy(self) -> float | None:
        """Mean memory-port cycles per packet, when the backend models it."""
        if self.occupancy is None or not self.occupancy.size:
            return None
        return float(self.occupancy.mean())

    def device_throughput_pps(self, freq_hz: float) -> float | None:
        """Steady-state modelled-device packets/second at ``freq_hz``."""
        mo = self.mean_occupancy()
        return freq_hz / mo if mo else None

    def energy_per_packet_j(self, model) -> float | None:
        """Joules/packet on an :class:`~repro.energy.AcceleratorPowerModel`."""
        mo = self.mean_occupancy()
        return model.energy_per_packet_j(mo) if mo else None


class ClassificationPipeline:
    """Stream traces through a classifier in chunks across N shards.

    With ``persistent=True`` the forked worker pool survives across
    ``run()`` calls (create once, serve many traces) and chunk results
    travel through shared memory instead of pickles.  Use
    :meth:`close` — or the pipeline as a context manager — to tear the
    pool down deterministically.

    The persistent workers hold the *copy-on-write snapshot of the
    classifier taken when the pool forked*: mutating the classifier
    afterwards (e.g. ``IncrementalClassifier.insert``) does not reach
    them.  Call :meth:`close` after a mutation — the next ``run()``
    forks a fresh pool from the updated classifier.  (Transient mode
    re-forks per run and needs no such step.)
    """

    def __init__(
        self,
        classifier: Classifier,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        shards: int = 1,
        persistent: bool = False,
    ) -> None:
        if chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        self.classifier = classifier
        self.chunk_size = chunk_size
        self.shards = shards
        self.persistent = persistent
        self._pool = None
        self._pool_size = 0

    # -- persistent-pool lifecycle --------------------------------------
    def close(self) -> None:
        """Tear down the persistent worker pool (no-op otherwise)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_size = 0

    def __enter__(self) -> "ClassificationPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    def _ensure_pool(self, ndim: int):
        """Fork the persistent pool on first use; reuse it afterwards."""
        if self._pool is None:
            import multiprocessing

            global _SHARD_STATE
            ctx = multiprocessing.get_context("fork")
            try:
                # Start the resource tracker *before* forking: the
                # workers then share the parent's tracker process, which
                # keeps shared-memory bookkeeping single-owner (see
                # ``_attach_shm``).
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:  # pragma: no cover - tracker is stdlib
                pass
            # Build every lazy batch structure before forking so workers
            # inherit them copy-on-write.
            warm_batch_state(self.classifier, ndim)
            self._pool_size = min(self.shards, os.cpu_count() or 1)
            _SHARD_STATE = (self.classifier, None)
            try:
                self._pool = ctx.Pool(processes=self._pool_size)
            finally:
                # Workers hold their copy-on-write snapshot; the parent
                # global is only needed across the fork itself.
                _SHARD_STATE = None
        return self._pool

    # ------------------------------------------------------------------
    def _chunk_bounds(self, n: int) -> list[tuple[int, int]]:
        return [
            (start, min(start + self.chunk_size, n))
            for start in range(0, n, self.chunk_size)
        ]

    @staticmethod
    def _fork_available() -> bool:
        try:
            import multiprocessing

            return "fork" in multiprocessing.get_all_start_methods()
        except ImportError:  # pragma: no cover - multiprocessing is stdlib
            return False

    def run(self, trace: PacketTrace) -> PipelineResult:
        """Classify ``trace``; results are in trace order regardless of
        shard scheduling."""
        headers = trace.headers
        n = headers.shape[0]
        bounds = self._chunk_bounds(n)
        started = time.perf_counter()
        if self.shards > 1 and len(bounds) > 1 and self._fork_available():
            if self.persistent:
                outputs, workers = self._run_persistent(headers, bounds)
            else:
                outputs, workers = self._run_forked(headers, bounds)
        else:
            outputs = [_run_chunk_local(self.classifier, headers, b) for b in bounds]
            workers = 1
        elapsed = time.perf_counter() - started
        return self._aggregate(outputs, bounds, n, elapsed, workers)

    def _run_forked(
        self, headers: np.ndarray, bounds: list[tuple[int, int]]
    ) -> tuple[list[ChunkOutput], int]:
        import multiprocessing

        global _SHARD_STATE
        ctx = multiprocessing.get_context("fork")
        workers = min(self.shards, len(bounds), os.cpu_count() or 1)
        # Warm any lazily-built batch structures (e.g. the tuple-space
        # probe tables) in the parent so the forked children inherit
        # them copy-on-write instead of each rebuilding them.
        warm_batch_state(self.classifier, headers.shape[1])
        _SHARD_STATE = (self.classifier, headers)
        try:
            with ctx.Pool(processes=workers) as pool:
                return pool.map(_run_chunk, bounds), workers
        finally:
            _SHARD_STATE = None

    def _run_persistent(
        self, headers: np.ndarray, bounds: list[tuple[int, int]]
    ) -> tuple[list[ChunkOutput], int]:
        """One run over the long-lived pool with shared-memory transport.

        The trace is copied once into a shared input segment; workers
        scatter their match/occupancy slices into shared output segments
        and return scalars only.  All segments are unlinked before the
        method returns — workers drop their stale attachments at the
        start of the next run.
        """
        from multiprocessing import shared_memory

        pool = self._ensure_pool(headers.shape[1])
        n = headers.shape[0]
        segments = []

        def _create(size: int) -> shared_memory.SharedMemory:
            shm = shared_memory.SharedMemory(create=True, size=max(1, size))
            segments.append(shm)
            return shm

        try:
            shm_in = _create(headers.nbytes)
            shm_out = _create(n * 8)
            shm_occ = _create(n * 8)
            np.ndarray(headers.shape, headers.dtype, buffer=shm_in.buf)[:] = (
                headers
            )
            tasks = [
                (
                    shm_in.name, headers.shape, str(headers.dtype),
                    shm_out.name, shm_occ.name, b,
                )
                for b in bounds
            ]
            results = pool.map(_run_chunk_shm, tasks)
            match = np.ndarray((n,), np.int64, buffer=shm_out.buf).copy()
            has_occ = all(r[0] for r in results)
            occupancy = (
                np.ndarray((n,), np.int64, buffer=shm_occ.buf).copy()
                if has_occ
                else None
            )
        finally:
            for shm in segments:
                shm.close()
                shm.unlink()
        outputs = [
            (
                match[s:e],
                None if occupancy is None else occupancy[s:e],
                cache,
            )
            for (s, e), (_, cache) in zip(bounds, results)
        ]
        return outputs, min(self._pool_size, len(bounds))

    def _aggregate(
        self,
        outputs: list[ChunkOutput],
        bounds: list[tuple[int, int]],
        n: int,
        elapsed: float,
        workers: int,
    ) -> PipelineResult:
        chunks: list[ChunkStats] = []
        for i, ((start, end), (match, occ, cache)) in enumerate(
            zip(bounds, outputs)
        ):
            chunks.append(
                ChunkStats(
                    index=i,
                    start=start,
                    n_packets=end - start,
                    matched=int((match >= 0).sum()),
                    occupancy_sum=None if occ is None else int(occ.sum()),
                    cache_hits=None if cache is None else cache[0],
                    cache_misses=None if cache is None else cache[1],
                    cache_evictions=None if cache is None else cache[2],
                )
            )
        if outputs:
            match = np.concatenate([m for m, _, _ in outputs])
            occs = [o for _, o, _ in outputs]
            occupancy = (
                np.concatenate(occs) if all(o is not None for o in occs) else None
            )
        else:
            match = np.empty(0, dtype=np.int64)
            occupancy = None
        caches = [c for _, _, c in outputs]
        has_cache = bool(caches) and all(c is not None for c in caches)
        return PipelineResult(
            match=match,
            chunks=chunks,
            n_shards=workers,
            chunk_size=self.chunk_size,
            elapsed_s=elapsed,
            backend=getattr(self.classifier, "backend_name",
                            type(self.classifier).__name__),
            occupancy=occupancy,
            cache_hits=sum(c[0] for c in caches) if has_cache else None,
            cache_misses=sum(c[1] for c in caches) if has_cache else None,
            cache_evictions=sum(c[2] for c in caches) if has_cache else None,
        )


def _run_chunk_local(
    classifier: Classifier, headers: np.ndarray, bounds: tuple[int, int]
) -> ChunkOutput:
    start, end = bounds
    stats: BatchStats = batch_stats_of(classifier, headers[start:end])
    cache = (
        None
        if stats.cache_hits is None or stats.cache_misses is None
        else (
            stats.cache_hits,
            stats.cache_misses,
            stats.cache_evictions or 0,
        )
    )
    return stats.match, stats.occupancy, cache
