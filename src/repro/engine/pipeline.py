"""Sharded streaming classification pipeline — the serving harness.

A :class:`ClassificationPipeline` streams a :class:`~repro.core.packet.
PacketTrace` through a classifier in fixed-size chunks, optionally fanned
out over N worker shards, and aggregates per-chunk statistics into one
:class:`PipelineResult`:

* matches are concatenated in trace order, so the pipeline output is
  bit-for-bit identical to a single-shot ``classify_trace`` at every
  shard count (the conformance suite asserts this);
* backends that model hardware cost (the accelerator) contribute
  per-packet occupancy, which the result converts into device throughput
  and energy per packet via the :mod:`repro.energy` models;
* wall-clock throughput of the *simulation itself* is reported so the
  benchmark suite can track the serving path.

**Shard modes.**  ``shard_mode`` selects the worker tier:

* ``"processes"`` (the default for direct construction) — ``fork``-based
  multiprocessing whenever ``shards > 1`` and the platform offers it.
  The built classifier is inherited copy-on-write, so nothing large is
  pickled.
* ``"auto"`` (the :class:`~repro.serve.EngineConfig` default) — fork
  only when it can actually win: the worker count after clamping to CPU
  and chunk counts must be >= 2, otherwise the single-process path
  serves the trace with identical results.  On a 1-CPU host this is
  what keeps the shards axis from *inverting* — a 1-worker fork pool
  pays fork + IPC for zero parallelism.
* ``"threads"`` — a thread pool running the NumPy kernels (which release
  the GIL in their hot loops) in-process: no fork, no IPC, per-shard
  flow-cache clones that stay warm across runs.  Chunks are assigned
  round-robin to shard-affine workers, so each shard sees its chunks in
  order exactly like a process shard would.

Two fork pool modes exist (``shard_mode in ("auto", "processes")``):

* *transient* (default) — a fresh pool per ``run()``; the classifier and
  the trace are inherited copy-on-write, chunk results come back pickled
  through the pool;
* *persistent* (``persistent=True``) — one pool is forked on first use
  and reused across ``run()`` calls, amortising fork + warm-up cost over
  a serving session.  The trace travels through a **pipeline-lifetime
  shared-memory arena**: input/match/occupancy segments are created once
  (with growth slack) and reused across runs, the trace is written once
  into the input segment, and each task ships only a ``(names, bounds,
  pending)`` descriptor.  Workers cache their segment attachments by
  name — an attach happens only when the arena grows — and scatter
  their match/occupancy slices straight into the shared output buffers,
  so steady-state per-chunk traffic is one tiny descriptor and one tiny
  scalar tuple.  Results are bit-identical to the other modes at every
  shard count.

**Dispatch auto-tuning.**  ``min_chunk_packets`` coalesces chunks until
each dispatch carries at least that many packets (the engine default
targets >= 64k packets/dispatch), amortising per-chunk Python and IPC
cost; it applies only to runs *without* updates, because the chunk grid
is the epoch grid.  Independently, a final chunk smaller than a quarter
of the chunk size is merged into its predecessor — a tiny tail pays
full dispatch cost otherwise.

**Fault tolerance.**  Construct with a
:class:`~repro.engine.supervision.SupervisionPolicy` (the engine builds
one from ``EngineConfig.fault_policy``/``max_retries``/
``chunk_timeout_s``) and every dispatch is supervised: per-chunk
deadlines, worker exit-code watch, bounded retry with seeded backoff,
and — under ``fault_policy="degrade"`` — the worker-tier ladder
``persistent -> processes -> threads -> inline``.  A fork-tier retry
tears the pool down and re-forks from the parent, whose classifier is
only caught up *after* a successful dispatch, so every replayed chunk
re-applies its exact update prefix and the run stays bit-identical to
a fault-free one.  The persistent arena carries a generation fence +
checksum control word each task descriptor repeats, so a replayed
attach can never silently read a torn or stale segment.  Injected
faults (:mod:`repro.engine.faults`) ride the same machinery via
``run(trace, faults=plan)``; everything observed lands in
``PipelineResult.fault``.

**Live rule updates.**  ``run(trace, updates=[...])`` interleaves a
:class:`~repro.core.updates.ScheduledUpdate` stream with classification:
each batch takes effect at the first chunk boundary at or after its
``at_packet`` offset, so every packet is classified against exactly one
ruleset version (its chunk's epoch — recorded on
:class:`ChunkStats.epoch`).  In the forked modes every worker applies
the same batches in the same deterministic order before touching a
chunk from a later epoch (each task carries the update prefix it
requires; a per-process watermark makes re-application a no-op), and
the parent catches its own copy up after the run; the thread tier
applies each batch exactly once at its chunk boundary (a barrier drains
in-flight chunks first).  All modes produce identical matches — the
differential update-conformance suite replays them against a per-epoch
linear-search oracle.
"""

from __future__ import annotations

import os
import time
from bisect import bisect_left
from dataclasses import dataclass, field

import numpy as np

from ..core.errors import ArenaCorruptionError, ConfigError
from ..core.packet import PacketTrace
from ..core.updates import RuleUpdate, ScheduledUpdate
from .faults import FaultPlan, fire_update_specs, fire_worker_specs
from .protocol import BatchStats, Classifier, batch_stats_of, warm_batch_state
from .supervision import (
    DEGRADATION_LADDER,
    RECOVERABLE,
    FaultReport,
    SupervisionPolicy,
    Supervisor,
    supervised_map,
    teardown_pool,
)

#: Default packets per chunk: large enough to amortise NumPy dispatch,
#: small enough that per-chunk stats stay meaningful for live reporting.
DEFAULT_CHUNK_SIZE = 4096

#: The worker tiers ``shard_mode`` accepts.
SHARD_MODES = ("auto", "processes", "threads")

#: The engine-level dispatch target: coalesce chunks until each dispatch
#: carries at least this many packets (runs without updates only).
DEFAULT_MIN_CHUNK_PACKETS = 65536

#: A final chunk smaller than ``chunk_size / TAIL_MERGE_DIVISOR`` is
#: merged into its predecessor instead of paying full dispatch cost.
TAIL_MERGE_DIVISOR = 4

#: Persistent-pool update-log watermark: once this many batches have
#: accumulated for one pool's lifetime, the pool is re-forked (from the
#: caught-up parent) instead of shipping an ever-growing prefix with
#: every chunk task.
POOL_LOG_MAX_BATCHES = 64

#: Module global holding (classifier, headers) across a ``fork`` so
#: worker shards inherit them copy-on-write instead of via pickling.
#: ``headers`` is ``None`` for persistent pools (the trace then arrives
#: through the shared-memory arena).
_SHARD_STATE: tuple[Classifier, np.ndarray | None] | None = None

#: Per-process watermark of the last applied update-batch sequence
#: number.  Set in the parent immediately before forking a pool so the
#: children inherit it, then advanced worker-locally as shipped batches
#: are applied — a batch is applied at most once per process, and always
#: in sequence order.
_WORKER_SEQ = 0

#: Per-worker cache of shared-memory arena attachments, keyed by the
#: segment-name tuple.  The parent's arena is pipeline-lifetime, so in
#: steady state a worker attaches once and reuses the mapped segments
#: for every later chunk; a name change (the arena grew) swaps them.
_ARENA_ATTACH: dict = {"names": None, "segs": ()}

#: One update batch as shipped to workers: (sequence number, ops).
PendingUpdate = tuple[int, tuple[RuleUpdate, ...]]

#: One processed chunk: (match, occupancy | None,
#: (hits, misses, evictions) | None, shard label).  The cache triple is
#: present only when the classifier is a flow-cached front-end (see
#: :mod:`repro.engine.flowcache`).  The shard label identifies which
#: worker served the chunk (a pid in the fork tiers, a thread index in
#: the thread tier, 0 single-process); the aggregator densifies labels
#: into 0-based shard ids.
ChunkOutput = tuple[
    np.ndarray, np.ndarray | None, tuple[int, int, int] | None, int
]


@dataclass(frozen=True)
class _ScheduledEntry:
    """A normalised update batch: global sequence number plus the index
    of the first chunk that must observe it."""

    seq: int
    effect_chunk: int
    batch: tuple[RuleUpdate, ...]


def _apply_pending(
    classifier: Classifier, pending: tuple[PendingUpdate, ...]
) -> None:
    """Catch this process's classifier copy up to the newest shipped
    batch.  Sequence numbers are globally ordered and tasks reach each
    worker in increasing chunk order, so the watermark guarantees every
    process applies every batch exactly once, in order."""
    global _WORKER_SEQ
    for seq, batch in pending:
        if seq > _WORKER_SEQ:
            classifier.apply_updates(batch)
            _WORKER_SEQ = seq


def _run_chunk(task) -> ChunkOutput:
    index, bounds, pending, specs = task
    assert _SHARD_STATE is not None
    classifier, headers = _SHARD_STATE
    if specs:
        fire_worker_specs(specs, in_process=False, chunk=index)
    if pending:
        _apply_pending(classifier, pending)
    match, occ, cache = _run_chunk_local(classifier, headers, bounds)
    return match, occ, cache, os.getpid()


def _attach_arena(names: tuple[str, ...]):
    """Return this worker's mapped arena segments, (re)attaching only
    when the segment names changed (the parent grew the arena).

    Attaching re-registers the name with the resource tracker, but the
    workers are forked *after* the parent has started the tracker (see
    ``ClassificationPipeline._ensure_pool``), so parent and workers
    share one tracker process and the duplicate registration is a set
    no-op — the parent's unlink (on arena growth or ``close()``) remains
    the single owner of the segment lifecycle.
    """
    global _ARENA_ATTACH
    if _ARENA_ATTACH["names"] != names:
        from multiprocessing import shared_memory

        for shm in _ARENA_ATTACH["segs"]:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - stale views
                pass
        segs = tuple(shared_memory.SharedMemory(name=n) for n in names)
        _ARENA_ATTACH = {"names": names, "segs": segs}
    return _ARENA_ATTACH["segs"]


def _run_chunk_shm(task) -> tuple[bool, tuple[int, int, int] | None, int]:
    """Persistent-pool worker: classify one chunk, write results into the
    shared arena, return only whether occupancy was modelled plus the
    chunk's flow-cache triple and this worker's shard label (the parent
    aggregates everything else from the shared arrays).

    The task is a tiny descriptor — segment names, the trace shape, the
    chunk bounds, the update prefix, the arena's expected control word
    and any injected fault specs.  In steady state (arena unchanged
    since the last run) the worker's cached attachment is reused, so no
    ``shm_open``/``mmap`` happens at all; the headers and output views
    are zero-copy windows into the shared segments.

    Before reading the trace the worker verifies the arena's control
    segment — a (generation, checksum) pair the parent wrote *after*
    the trace — against the values repeated in this task.  A mismatch
    means the attach would read a torn or stale arena (e.g. a replayed
    chunk racing an arena growth), and raises
    :class:`~repro.core.errors.ArenaCorruptionError` instead of
    silently serving garbage.
    """
    names, shape, dtype, index, bounds, pending, ctl_expected, specs = task
    assert _SHARD_STATE is not None
    classifier = _SHARD_STATE[0]
    if specs:
        fire_worker_specs(specs, in_process=False, chunk=index)
    if pending:
        _apply_pending(classifier, pending)
    segs = _attach_arena(names)
    ctl = np.ndarray((2,), np.uint64, buffer=segs[3].buf)
    seen = (int(ctl[0]), int(ctl[1]))
    if seen != tuple(ctl_expected):
        raise ArenaCorruptionError(
            f"arena fence mismatch serving chunk {index}: "
            f"generation/checksum {seen[0]}/{seen[1]:#x} != expected "
            f"{ctl_expected[0]}/{ctl_expected[1]:#x}",
            chunk=index,
            shard=os.getpid(),
            cause="arena",
        )
    n = shape[0]
    start, end = bounds
    headers = np.ndarray(shape, dtype=dtype, buffer=segs[0].buf)
    match, occ, cache = _run_chunk_local(classifier, headers, bounds)
    has_occ = occ is not None
    np.ndarray((n,), np.int64, buffer=segs[1].buf)[start:end] = match
    if has_occ:
        np.ndarray((n,), np.int64, buffer=segs[2].buf)[start:end] = occ
    # Views die with this frame; the cached segments stay mapped.
    del headers, match, occ
    return has_occ, cache, os.getpid()


def aggregate_shard_cache_stats(chunks) -> list[dict]:
    """Fold per-chunk flow-cache counters into per-shard accounting:
    one dict per shard with the chunks it served, its hit/miss/eviction
    totals and its hit rate.  Shared by :class:`PipelineResult` and
    :class:`~repro.serve.EngineReport`."""
    acc: dict[int, dict] = {}
    for c in chunks:
        if c.cache_hits is None:
            continue
        d = acc.setdefault(c.shard, {
            "shard": c.shard, "chunks": 0, "hits": 0,
            "misses": 0, "evictions": 0,
        })
        d["chunks"] += 1
        d["hits"] += c.cache_hits
        d["misses"] += c.cache_misses
        d["evictions"] += c.cache_evictions or 0
    out = [acc[k] for k in sorted(acc)]
    for d in out:
        lookups = d["hits"] + d["misses"]
        d["hit_rate"] = d["hits"] / lookups if lookups else 0.0
    return out


@dataclass(frozen=True)
class ChunkStats:
    """Aggregate statistics for one processed chunk.

    ``cache_hits``/``cache_misses``/``cache_evictions`` are filled when
    the classifier is a flow-cached front-end; ``None`` on bare
    backends.  ``epoch`` is the ruleset version every packet of this
    chunk was classified against (``None`` when the backend is not
    updatable); ``updates_applied`` counts the update *operations* that
    took effect immediately before this chunk.  ``shard`` is the
    0-based id of the worker that served the chunk (0 single-process;
    ids are densified in first-served order across the run).
    """

    index: int
    start: int
    n_packets: int
    matched: int
    occupancy_sum: int | None = None
    cache_hits: int | None = None
    cache_misses: int | None = None
    cache_evictions: int | None = None
    epoch: int | None = None
    updates_applied: int = 0
    shard: int = 0

    @property
    def matched_fraction(self) -> float:
        return self.matched / self.n_packets if self.n_packets else 0.0


@dataclass
class PipelineResult:
    """Trace-order matches plus aggregated serving statistics.

    ``n_shards`` is the number of workers that *actually ran*: 1
    whenever the single-process fallback served the trace (no ``fork``
    on the platform, a single chunk, ``shards=1``, or ``shard_mode=
    "auto"`` declining a fork that could not win), else the worker count
    after clamping to chunk and CPU counts.
    """

    match: np.ndarray
    chunks: list[ChunkStats]
    n_shards: int
    chunk_size: int
    elapsed_s: float
    backend: str = "classifier"
    occupancy: np.ndarray | None = field(default=None, repr=False)
    #: Flow-cache totals over all chunks (``None`` on bare backends).
    #: Counts come back from whichever process served each chunk, so
    #: they are correct in forked/persistent modes too.
    cache_hits: int | None = None
    cache_misses: int | None = None
    cache_evictions: int | None = None
    #: Live-update totals for the run: batches and operations applied,
    #: operations skipped (removals of already-dead ids), and the
    #: classifier's epoch after the run (``None`` when no update stream
    #: was served / the backend is not updatable).
    update_batches: int = 0
    update_ops: int = 0
    update_skipped: int = 0
    final_epoch: int | None = None
    #: Parent-side wall-clock seconds each update batch took to apply,
    #: in schedule order (the control-plane apply cost: tree surgery +
    #: kernel patch + cache epoch bump).  Empty when no updates ran.
    update_latencies_s: tuple[float, ...] = ()
    #: Supervisor observations for the run (retries, replays,
    #: degradations, crash counts, recovery latencies).  ``None`` on an
    #: unsupervised run; zero-counted on a supervised fault-free one.
    fault: FaultReport | None = field(default=None, repr=False)

    @property
    def n_packets(self) -> int:
        return len(self.match)

    @property
    def matched(self) -> int:
        return int((self.match >= 0).sum())

    @property
    def matched_fraction(self) -> float:
        return self.matched / self.n_packets if self.n_packets else 0.0

    def throughput_pps(self) -> float:
        """Simulation wall-clock packets/second through the pipeline."""
        return self.n_packets / self.elapsed_s if self.elapsed_s > 0 else 0.0

    # -- flow-cache aggregation (cached front-ends) ---------------------
    @property
    def cache_lookups(self) -> int | None:
        """Total lookups through the flow cache (hits + backend misses)."""
        if self.cache_hits is None or self.cache_misses is None:
            return None
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float | None:
        """Fraction of packets served without a backend lookup."""
        lookups = self.cache_lookups
        if lookups is None:
            return None
        return self.cache_hits / lookups if lookups else 0.0

    def shard_cache_stats(self) -> list[dict] | None:
        """Per-shard flow-cache accounting, from the per-chunk counters.

        Each entry reports one shard's chunks served, hits, misses,
        evictions and hit rate — the per-shard view the aggregate
        ``cache_hit_rate`` flattens (shard caches are private, so their
        hit rates genuinely differ under skew).  ``None`` on bare
        backends.
        """
        if self.cache_hits is None:
            return None
        return aggregate_shard_cache_stats(self.chunks)

    # -- hardware cost aggregation (accelerator-backed pipelines) -------
    def mean_occupancy(self) -> float | None:
        """Mean memory-port cycles per packet, when the backend models it."""
        if self.occupancy is None or not self.occupancy.size:
            return None
        return float(self.occupancy.mean())

    def device_throughput_pps(self, freq_hz: float) -> float | None:
        """Steady-state modelled-device packets/second at ``freq_hz``."""
        mo = self.mean_occupancy()
        return freq_hz / mo if mo else None

    def energy_per_packet_j(self, model) -> float | None:
        """Joules/packet on an :class:`~repro.energy.AcceleratorPowerModel`."""
        mo = self.mean_occupancy()
        return model.energy_per_packet_j(mo) if mo else None


class ClassificationPipeline:
    """Stream traces through a classifier in chunks across N shards.

    ``shard_mode`` picks the worker tier (see the module docstring):
    ``"processes"`` forces fork-based sharding whenever ``shards > 1``
    (the historical behaviour, and the right mode for conformance tests
    that must exercise the fork transport), ``"auto"`` forks only when
    the clamped worker count can win, ``"threads"`` runs shard-affine
    workers in a thread pool with per-shard flow-cache clones.

    With ``persistent=True`` the forked worker pool survives across
    ``run()`` calls (create once, serve many traces) and traces/results
    travel through a pipeline-lifetime shared-memory arena instead of
    pickles.  Use :meth:`close` — or the pipeline as a context manager —
    to tear the pool (and arena) down deterministically.

    Rule updates belong *inside* ``run(trace, updates=...)``: the update
    stream is applied with deterministic epoch semantics in every pool
    mode, including persistent pools (each task ships the update prefix
    its chunk requires, and the long-lived workers catch up exactly
    once per batch).  The one remaining caveat is **out-of-band**
    mutation: the persistent workers hold the copy-on-write snapshot of
    the classifier taken when the pool forked, so mutating the
    classifier directly (e.g. ``IncrementalClassifier.insert`` between
    runs) does not reach them — call :meth:`close` after such a
    mutation and the next ``run()`` forks a fresh pool.  (Transient
    mode re-forks per run and needs no such step; the thread tier
    shares the live classifier and tracks its ``update_epoch``.)
    """

    def __init__(
        self,
        classifier: Classifier,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        shards: int = 1,
        persistent: bool = False,
        shard_mode: str = "processes",
        min_chunk_packets: int = 0,
        policy: SupervisionPolicy | None = None,
    ) -> None:
        if chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        if shard_mode not in SHARD_MODES:
            raise ConfigError(
                f"unknown shard_mode {shard_mode!r}; "
                f"expected one of {', '.join(SHARD_MODES)}"
            )
        if min_chunk_packets < 0:
            raise ConfigError(
                f"min_chunk_packets must be >= 0, got {min_chunk_packets}"
            )
        self.classifier = classifier
        self.chunk_size = chunk_size
        self.shards = shards
        self.persistent = persistent
        self.shard_mode = shard_mode
        self.min_chunk_packets = min_chunk_packets
        #: Fault-handling policy; ``None`` keeps the historical
        #: unsupervised dispatch (a fault propagates raw).  Passing a
        #: :class:`~repro.engine.supervision.SupervisionPolicy` — or a
        #: ``faults=`` plan to :meth:`run` — routes every dispatch
        #: through the supervisor.
        self.policy = policy
        self._supervisor = Supervisor(policy) if policy is not None else None
        self._pool = None
        self._pool_size = 0
        #: Pipeline-lifetime shared-memory arena for the persistent
        #: pool: ``{"names": (in, out, occ, ctl), "segs": [...]}``,
        #: grown (re-created larger) only when a trace outsizes it.  The
        #: ctl segment holds the (generation, checksum) fence pair.
        self._arena: dict | None = None
        #: Monotonic arena-content generation: bumped every time the
        #: parent (re)writes the input segment, never reset, so a stale
        #: attach can never present a valid fence.
        self._arena_generation = 0
        #: Thread-tier per-shard flow-cache clones, persisted across
        #: runs so shard caches stay warm, plus the backend epoch they
        #: were last synchronised against.
        self._thread_clones: list = []
        self._thread_epoch = 0
        #: Monotonic allocator for update-batch sequence numbers and the
        #: parent process's applied-batch watermark.
        self._update_seq = 0
        self._applied_seq = 0
        #: Batches applied while the current persistent pool has been
        #: alive.  Shipped (cheaply — workers skip applied seqs) with
        #: every later task so a worker that never saw an earlier run's
        #: chunks still applies its updates before any newer ones.
        self._pool_log: list[PendingUpdate] = []

    # -- persistent-pool lifecycle --------------------------------------
    def close(self) -> None:
        """Tear down the persistent worker pool and its shared-memory
        arena (no-op otherwise).

        Teardown is bounded: after ``terminate()`` every worker is
        joined against a shared deadline and SIGKILLed if it overstays
        (a hung or crash-looping worker cannot wedge ``close()``), and
        the arena segments are unlinked unconditionally afterwards so
        an abnormal exit leaks no shared memory.
        """
        if self._pool is not None:
            teardown_pool(self._pool, deadline_s=5.0)
            self._pool = None
            self._pool_size = 0
        self._release_arena()
        self._pool_log.clear()

    def __enter__(self) -> "ClassificationPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except (OSError, ValueError, TypeError, AttributeError):
            # Interpreter teardown may have dismantled multiprocessing /
            # shared_memory internals under us; nothing left to reap.
            pass

    def _ensure_pool(self, ndim: int):
        """Fork the persistent pool on first use; reuse it afterwards."""
        if self._pool is None:
            import multiprocessing

            global _SHARD_STATE, _WORKER_SEQ
            ctx = multiprocessing.get_context("fork")
            try:
                # Start the resource tracker *before* forking: the
                # workers then share the parent's tracker process, which
                # keeps shared-memory bookkeeping single-owner (see
                # ``_attach_arena``).
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except (OSError, RuntimeError):  # pragma: no cover - tracker spawn
                pass
            # Build every lazy batch structure before forking so workers
            # inherit them copy-on-write.
            warm_batch_state(self.classifier, ndim)
            self._pool_size = min(self.shards, os.cpu_count() or 1)
            _SHARD_STATE = (self.classifier, None)
            # Children inherit the parent's applied-update watermark:
            # every batch the forked snapshot already contains is
            # filtered out of the shipped prefixes.
            _WORKER_SEQ = self._applied_seq
            try:
                self._pool = ctx.Pool(processes=self._pool_size)
            finally:
                # Workers hold their copy-on-write snapshot; the parent
                # global is only needed across the fork itself.
                _SHARD_STATE = None
        return self._pool

    # -- shared-memory arena (persistent pool transport) ----------------
    def _release_arena(self) -> None:
        if self._arena is not None:
            for shm in self._arena["segs"]:
                try:
                    shm.close()
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - raced
                    pass
            self._arena = None

    def _ensure_arena(self, headers: np.ndarray) -> dict:
        """Return an arena large enough for ``headers``; grow (re-create
        with 25% slack and fresh names) only when the trace outsizes the
        current one.  Workers notice the new names on their next task
        and swap attachments; the old (unlinked) segments free once the
        last attachment drops."""
        need_in = max(1, headers.nbytes)
        need_out = max(1, headers.shape[0] * 8)
        a = self._arena
        if (
            a is None
            or a["segs"][0].size < need_in
            or a["segs"][1].size < need_out
        ):
            from multiprocessing import shared_memory

            self._release_arena()
            segs = [
                shared_memory.SharedMemory(
                    create=True, size=size + size // 4
                )
                for size in (need_in, need_out, need_out)
            ]
            # Control segment: (generation, checksum) — exactly two
            # uint64 words, no growth slack needed.
            segs.append(shared_memory.SharedMemory(create=True, size=16))
            a = {"names": tuple(s.name for s in segs), "segs": segs}
            self._arena = a
        return a

    def _seal_arena(self, arena: dict, headers: np.ndarray) -> tuple[int, int]:
        """Write the arena control word *after* the trace: a fresh
        generation number plus a content checksum.  Returns the pair for
        task descriptors — workers verify it before reading."""
        self._arena_generation += 1
        checksum = int(headers.sum(dtype=np.uint64))
        ctl = np.ndarray((2,), np.uint64, buffer=arena["segs"][3].buf)
        ctl[0] = self._arena_generation
        ctl[1] = checksum
        return (self._arena_generation, checksum)

    # ------------------------------------------------------------------
    def _chunk_bounds(
        self, n: int, chunk_size: int | None = None
    ) -> list[tuple[int, int]]:
        """Chunk grid over ``n`` packets, with the tiny-tail merge: a
        final chunk shorter than ``chunk_size / 4`` is folded into its
        predecessor (it would pay full dispatch cost for a sliver of
        work)."""
        size = self.chunk_size if chunk_size is None else chunk_size
        bounds = [
            (start, min(start + size, n)) for start in range(0, n, size)
        ]
        if (
            len(bounds) > 1
            and (bounds[-1][1] - bounds[-1][0]) * TAIL_MERGE_DIVISOR < size
        ):
            _, end = bounds.pop()
            bounds[-1] = (bounds[-1][0], end)
        return bounds

    def _planned_workers(self) -> int:
        """How many workers a multi-chunk, update-free run could engage
        under the configured shard mode on this host."""
        if self.shards <= 1:
            return 1
        if self.shard_mode == "threads":
            return self.shards
        if not self._fork_available():
            return 1
        return min(self.shards, os.cpu_count() or 1)

    def _effective_chunk_size(
        self, has_updates: bool, n: int | None = None
    ) -> int:
        """The dispatch granularity for one run: coalesced up to
        ``min_chunk_packets`` unless an update stream pins the epoch
        grid to the configured ``chunk_size``.

        Coalescing is worker-aware: merging a run into fewer chunks
        than the shards it could engage starves the pool — at 4 shards
        the ``min_chunk_packets`` floor used to fold a whole trace into
        one or two dispatches, serving it on 1-2 workers while the rest
        idled (the shards_4 < shards_2 throughput inversion).  When the
        planned worker count exceeds one, cap the coalesced size at
        ``ceil(n / workers)`` so every engaged worker gets a chunk,
        never dropping below the configured ``chunk_size``.
        """
        if has_updates or not self.min_chunk_packets:
            return self.chunk_size
        size = max(self.chunk_size, self.min_chunk_packets)
        workers = self._planned_workers()
        if n and workers > 1:
            per_worker = -(-n // workers)
            size = max(self.chunk_size, min(size, per_worker))
        return size

    @staticmethod
    def _fork_available() -> bool:
        try:
            import multiprocessing

            return "fork" in multiprocessing.get_all_start_methods()
        except ImportError:  # pragma: no cover - multiprocessing is stdlib
            return False

    def _fork_engages(self, n_chunks: int | None = None) -> bool:
        """Whether the fork tier should serve a multi-chunk run.

        ``"processes"`` always forks (the historical contract — the
        conformance suites rely on it to exercise the transport);
        ``"auto"`` declines when clamping to CPUs (and chunks) leaves
        fewer than two workers, because a 1-worker pool pays fork + IPC
        for zero parallelism.
        """
        if self.shard_mode == "processes":
            return True
        workers = min(self.shards, os.cpu_count() or 1)
        if n_chunks is not None:
            workers = min(workers, n_chunks)
        return workers >= 2

    def fork_planned(self) -> bool:
        """Whether a multi-chunk ``run()`` would fork worker processes
        (the question :class:`~repro.serve.Engine` asks before starting
        serving threads — forking a multi-threaded process risks
        inheriting held locks)."""
        return (
            self.shards > 1
            and self.shard_mode != "threads"
            and self._fork_available()
            and self._fork_engages()
        )

    # -- update-stream plumbing -----------------------------------------
    def _normalise_updates(
        self, updates, bounds: list[tuple[int, int]]
    ) -> list[_ScheduledEntry]:
        """Sort, sequence-number and chunk-align an update stream.

        A batch scheduled at packet offset ``p`` takes effect at the
        first chunk whose start is >= ``p`` (batches beyond the last
        chunk start apply after the trace).  Equal offsets keep their
        given order, so the schedule is fully deterministic.
        """
        if not updates:
            return []
        from .updates import is_updatable

        if not is_updatable(self.classifier):
            raise ConfigError(
                f"backend {getattr(self.classifier, 'backend_name', '?')!r} "
                "does not serve rule updates; build it through "
                "repro.engine.updates.build_updatable_backend"
            )
        items: list[tuple[int, tuple[RuleUpdate, ...]]] = []
        for upd in updates:
            if isinstance(upd, ScheduledUpdate):
                items.append((upd.at_packet, tuple(upd.batch)))
            else:
                at, batch = upd
                items.append((int(at), tuple(batch)))
        items.sort(key=lambda item: item[0])  # stable
        starts = [b[0] for b in bounds]
        entries = []
        for at, batch in items:
            self._update_seq += 1
            entries.append(_ScheduledEntry(
                seq=self._update_seq,
                effect_chunk=bisect_left(starts, at),
                batch=batch,
            ))
        return entries

    def _apply_entry(
        self,
        entry: _ScheduledEntry,
        ordinal: int,
        latencies: list[float],
        plan: FaultPlan | None = None,
        report: FaultReport | None = None,
    ):
        """Apply one update batch to this process's classifier,
        watermarked (a batch an earlier tier or chunk loop already
        applied is skipped — returns ``None``) and supervised: an
        injected update fault fires *before* the apply, so a bounded
        retry re-applies a clean batch.  Per-batch apply seconds are
        appended to ``latencies``."""
        if entry.seq <= self._applied_seq:
            return None
        sup = self._supervisor
        attempt = 0
        while True:
            try:
                if plan is not None:
                    specs = plan.update_faults(ordinal, attempt)
                    if specs:
                        fire_update_specs(specs, ordinal)
                t0 = time.perf_counter()
                result = self.classifier.apply_updates(entry.batch)
                latencies.append(time.perf_counter() - t0)
                self._applied_seq = entry.seq
                return result
            except RECOVERABLE as exc:
                retriable = (
                    sup is not None
                    and sup.policy.fault_policy != "fail"
                    and attempt < sup.policy.max_retries
                )
                if not retriable:
                    raise (sup or Supervisor()).wrap_failure(
                        exc, tier="update", chunk=ordinal
                    ) from exc
                if report is not None:
                    report.update_retries += 1
                time.sleep(sup.backoff_s(attempt))
                attempt += 1

    def _parent_apply(
        self,
        entries: list[_ScheduledEntry],
        latencies: list[float],
        plan: FaultPlan | None = None,
        report: FaultReport | None = None,
    ) -> list:
        """Apply ``entries`` to this process's classifier (watermarked,
        so batches a fallback chunk loop already applied are skipped).
        Per-batch apply seconds are appended to ``latencies``."""
        results = []
        for ordinal, entry in enumerate(entries):
            result = self._apply_entry(entry, ordinal, latencies, plan, report)
            if result is not None:
                results.append(result)
        return results

    def _chunk_prefixes(
        self, bounds: list[tuple[int, int]], entries: list[_ScheduledEntry]
    ) -> list[tuple[PendingUpdate, ...]]:
        """Per-chunk update prefix a worker must have applied: the
        current pool's historical batches plus this run's batches up to
        the chunk's epoch."""
        acc: list[PendingUpdate] = list(self._pool_log)
        prefixes = []
        idx = 0
        for i in range(len(bounds)):
            while idx < len(entries) and entries[idx].effect_chunk <= i:
                acc.append((entries[idx].seq, entries[idx].batch))
                idx += 1
            prefixes.append(tuple(acc))
        return prefixes

    # -- tier selection & supervised dispatch ---------------------------
    def _select_tier(self, n_chunks: int) -> str:
        """The worker tier this run starts on (mirrors the historical
        dispatch branch exactly — supervision changes *recovery*, never
        the fault-free tier choice)."""
        multi = self.shards > 1 and n_chunks > 1
        if multi:
            if self.shard_mode == "threads":
                return "threads"
            if self._fork_available() and self._fork_engages(n_chunks):
                return "persistent" if self.persistent else "processes"
        return "inline"

    def _tier_available(self, tier: str) -> bool:
        if tier in ("persistent", "processes"):
            return self._fork_available()
        return True

    def _timeout_s(self) -> float:
        if self._supervisor is None:
            return 0.0
        return self._supervisor.policy.chunk_timeout_s

    def _supervised(self, plan: FaultPlan | None) -> bool:
        """Whether dispatches route through the supervisor: either a
        policy was configured or this run injects faults (a plan
        without a policy gets fail-fast supervision — typed errors,
        no silent hangs, no retries)."""
        return self._supervisor is not None or plan is not None

    @staticmethod
    def _chunk_specs(plan: FaultPlan | None, n_chunks: int, attempt: int):
        """Per-chunk injected-fault specs for one dispatch attempt,
        resolved in the parent and shipped inside the task descriptors
        so workers need no shared plan state."""
        if plan is None:
            return [()] * n_chunks
        return [plan.worker_faults(i, attempt) for i in range(n_chunks)]

    def _run_supervised(
        self,
        tier: str,
        headers: np.ndarray,
        bounds: list[tuple[int, int]],
        entries: list[_ScheduledEntry],
        update_results: list,
        update_latencies: list[float],
        plan: FaultPlan | None,
    ) -> tuple[list[ChunkOutput], int, FaultReport, str]:
        """Dispatch with recovery: bounded same-tier retries, then —
        under ``fault_policy="degrade"`` — the tier ladder.

        Whole-dispatch replay is safe exactly because the parent's
        classifier is caught up only *after* a successful fork-tier
        dispatch: a failed attempt leaves the parent at the pre-run
        epoch, the retry re-forks from that snapshot, and every task
        re-ships its chunk's exact update prefix.  The thread and
        inline tiers apply updates *mid*-dispatch instead, so their
        recovery is per-chunk (inside the tier) — if one of them still
        fails after updates took effect, replay would serve early
        chunks against a later epoch, and the supervisor chooses a
        typed error over silently breaking bit-identity.
        """
        sup = self._supervisor or Supervisor()
        policy = sup.policy
        report = FaultReport()
        ladder = [tier]
        if policy.fault_policy == "degrade":
            start = DEGRADATION_LADDER.index(tier)
            ladder = [
                t for t in DEGRADATION_LADDER[start:]
                if self._tier_available(t)
            ]
        seq_before = self._applied_seq
        last_exc: BaseException | None = None
        detected = 0.0
        for rung, t in enumerate(ladder):
            if rung:
                report.degradations.append(
                    f"{ladder[rung - 1]}->{t}:{type(last_exc).__name__}"
                )
                report.replays += len(bounds)
                report.recovery_s.append(time.perf_counter() - detected)
            attempt = 0
            while True:
                try:
                    outputs, workers = self._run_tier(
                        t, headers, bounds, entries,
                        update_results, update_latencies,
                        plan=plan, attempt=attempt, report=report,
                    )
                    return outputs, workers, report, t
                except RECOVERABLE as exc:
                    detected = time.perf_counter()
                    last_exc = exc
                    report.record_failure(exc)
                    if t == "persistent":
                        # The failed dispatch poisons the long-lived
                        # pool (and possibly the arena); reap both so
                        # the next attempt re-forks from the parent
                        # snapshot and reseals a fresh arena.
                        self.close()
                    if policy.fault_policy == "fail":
                        raise sup.wrap_failure(exc, tier=t) from exc
                    if self._applied_seq != seq_before:
                        raise sup.wrap_failure(exc, tier=t) from exc
                    if attempt < policy.max_retries:
                        report.retries += 1
                        report.replays += len(bounds)
                        time.sleep(sup.backoff_s(attempt))
                        report.recovery_s.append(
                            time.perf_counter() - detected
                        )
                        attempt += 1
                        continue
                    break  # retries exhausted on this tier
        raise sup.wrap_failure(last_exc, tier=ladder[-1]) from last_exc

    def _run_tier(
        self,
        tier: str,
        headers: np.ndarray,
        bounds: list[tuple[int, int]],
        entries: list[_ScheduledEntry],
        update_results: list,
        update_latencies: list[float],
        *,
        plan: FaultPlan | None,
        attempt: int,
        report: FaultReport | None,
    ) -> tuple[list[ChunkOutput], int]:
        """One full dispatch attempt on one worker tier, including the
        tier's update-application contract."""
        if tier == "threads":
            outputs, workers = self._run_threads(
                headers, bounds, entries, update_results, update_latencies,
                plan=plan, attempt=attempt, report=report,
            )
            # Batches scheduled past the last chunk apply after the trace.
            update_results.extend(
                self._parent_apply(entries, update_latencies, plan, report)
            )
        elif tier in ("persistent", "processes"):
            if tier == "persistent":
                outputs, workers = self._run_persistent(
                    headers, bounds, entries, plan=plan, attempt=attempt
                )
            else:
                outputs, workers = self._run_forked(
                    headers, bounds, entries, plan=plan, attempt=attempt
                )
            # The parent's copy catches up after the run (its state then
            # matches the workers', and later forks inherit it).  On a
            # failed dispatch this is never reached — which is what
            # makes whole-dispatch replay epoch-safe.
            update_results.extend(
                self._parent_apply(entries, update_latencies, plan, report)
            )
        else:
            outputs, workers = self._run_inline(
                headers, bounds, entries, update_results, update_latencies,
                plan=plan, attempt=attempt, report=report,
            )
        return outputs, workers

    # ------------------------------------------------------------------
    def run(
        self, trace: PacketTrace, updates=None, faults=None
    ) -> PipelineResult:
        """Classify ``trace``, optionally interleaving a rule-update
        stream; results are in trace order regardless of shard
        scheduling, and every chunk is classified against one
        well-defined ruleset epoch.

        ``faults`` injects a deterministic
        :class:`~repro.engine.faults.FaultPlan` (or dict / spec list /
        path) into this run's dispatches; recovery follows the
        pipeline's supervision policy, and ``PipelineResult.fault``
        accounts for everything observed.
        """
        from .updates import is_updatable

        plan = FaultPlan.coerce(faults)
        headers = trace.headers
        n = headers.shape[0]
        bounds = self._chunk_bounds(
            n, self._effective_chunk_size(bool(updates), n)
        )
        entries = self._normalise_updates(updates, bounds)
        # Epochs are reported only for genuinely updatable backends —
        # a cache wrapper around a non-updatable classifier merely
        # *delegates* and must keep reporting None.
        base_epoch = (
            int(getattr(self.classifier, "update_epoch", 0))
            if is_updatable(self.classifier) else None
        )
        update_results: list = []
        update_latencies: list[float] = []
        tier = self._select_tier(len(bounds))
        fault_report: FaultReport | None = None
        started = time.perf_counter()
        if self._supervised(plan):
            outputs, workers, fault_report, served_tier = (
                self._run_supervised(
                    tier, headers, bounds, entries,
                    update_results, update_latencies, plan,
                )
            )
        else:
            served_tier = tier
            outputs, workers = self._run_tier(
                tier, headers, bounds, entries,
                update_results, update_latencies,
                plan=None, attempt=0, report=None,
            )
        if entries and self._pool is not None:
            # Keep the long-lived workers replayable: later runs ship
            # these batches too (applied-at-most-once via the watermark).
            self._pool_log.extend((e.seq, e.batch) for e in entries)
            if len(self._pool_log) > POOL_LOG_MAX_BATCHES:
                # Bound the per-task prefix (and parent memory): the
                # parent is fully caught up after every run, so tearing
                # the pool down here is safe — the next run re-forks
                # from the current state with an empty log.
                self.close()
        elapsed = time.perf_counter() - started
        result = self._aggregate(
            outputs, bounds, n, elapsed, workers,
            entries=entries, base_epoch=base_epoch,
            update_results=update_results,
            update_latencies=update_latencies,
            fault=fault_report,
        )
        if (
            served_tier == "processes"
            and not entries
            and result.cache_hits is not None
            and hasattr(self.classifier, "warm_from_run")
        ):
            # Transient shards filled *their* (copy-on-write) caches and
            # died with them; seed the parent's cache from the run's
            # results so the next fork inherits a warm cache instead of
            # cold-starting every run.  Skipped when updates ran (the
            # results span epochs) and in persistent mode (the live
            # workers already keep their caches warm).
            self.classifier.warm_from_run(headers, result.match)
        return result

    def _run_forked(
        self,
        headers: np.ndarray,
        bounds: list[tuple[int, int]],
        entries: list[_ScheduledEntry] | None = None,
        *,
        plan: FaultPlan | None = None,
        attempt: int = 0,
    ) -> tuple[list[ChunkOutput], int]:
        import multiprocessing

        global _SHARD_STATE, _WORKER_SEQ
        ctx = multiprocessing.get_context("fork")
        workers = min(self.shards, len(bounds), os.cpu_count() or 1)
        # Warm any lazily-built batch structures (e.g. the tuple-space
        # probe tables) in the parent so the forked children inherit
        # them copy-on-write instead of each rebuilding them.
        warm_batch_state(self.classifier, headers.shape[1])
        prefixes = self._chunk_prefixes(bounds, entries or [])
        specs = self._chunk_specs(plan, len(bounds), attempt)
        tasks = list(zip(range(len(bounds)), bounds, prefixes, specs))
        _SHARD_STATE = (self.classifier, headers)
        _WORKER_SEQ = self._applied_seq
        try:
            with ctx.Pool(processes=workers) as pool:
                if self._supervised(plan):
                    return supervised_map(
                        pool, _run_chunk, tasks,
                        timeout_s=self._timeout_s(),
                    ), workers
                return pool.map(_run_chunk, tasks), workers
        finally:
            _SHARD_STATE = None

    def _run_persistent(
        self,
        headers: np.ndarray,
        bounds: list[tuple[int, int]],
        entries: list[_ScheduledEntry] | None = None,
        *,
        plan: FaultPlan | None = None,
        attempt: int = 0,
    ) -> tuple[list[ChunkOutput], int]:
        """One run over the long-lived pool with arena transport.

        The trace is copied once into the pipeline-lifetime input
        segment; workers scatter their match/occupancy slices into the
        shared output segments and return scalars only.  Segments are
        *not* created or unlinked per run — the arena persists (and
        workers keep their attachments) until a larger trace forces a
        growth or the pipeline closes.
        """
        pool = self._ensure_pool(headers.shape[1])
        arena = self._ensure_arena(headers)
        prefixes = self._chunk_prefixes(bounds, entries or [])
        specs = self._chunk_specs(plan, len(bounds), attempt)
        n = headers.shape[0]
        names = arena["names"]
        shm_in, shm_out, shm_occ, shm_ctl = arena["segs"]
        np.ndarray(headers.shape, headers.dtype, buffer=shm_in.buf)[:] = (
            headers
        )
        ctl_expected = self._seal_arena(arena, headers)
        if plan is not None and plan.arena_faults(attempt):
            # Injected corruption: flip checksum bits *after* sealing —
            # to the workers' fence check this is exactly what a torn
            # or stale arena write looks like.
            ctl = np.ndarray((2,), np.uint64, buffer=shm_ctl.buf)
            ctl[1] = ctl[1] ^ np.uint64(0xDEAD)
        tasks = [
            (
                names, headers.shape, str(headers.dtype),
                i, b, pending, ctl_expected, sp,
            )
            for i, (b, pending, sp) in enumerate(
                zip(bounds, prefixes, specs)
            )
        ]
        if self._supervised(plan):
            results = supervised_map(
                pool, _run_chunk_shm, tasks, timeout_s=self._timeout_s()
            )
        else:
            results = pool.map(_run_chunk_shm, tasks)
        match = np.ndarray((n,), np.int64, buffer=shm_out.buf).copy()
        has_occ = all(r[0] for r in results)
        occupancy = (
            np.ndarray((n,), np.int64, buffer=shm_occ.buf).copy()
            if has_occ
            else None
        )
        outputs = [
            (
                match[s:e],
                None if occupancy is None else occupancy[s:e],
                cache,
                pid,
            )
            for (s, e), (_, cache, pid) in zip(bounds, results)
        ]
        return outputs, min(self._pool_size, len(bounds))

    # -- thread tier ----------------------------------------------------
    def _ensure_thread_clones(self, workers: int) -> list:
        """Per-shard serving objects for the thread tier.

        Flow-cached classifiers get one private cache clone per shard
        (kept across runs, so shard caches stay warm); the clones share
        the wrapped backend, whose batch kernels are pure NumPy and safe
        to walk concurrently.  Bare backends are shared directly.  A
        backend ``update_epoch`` change since the last run epoch-bumps
        every clone cache, so out-of-run updates never serve stale
        entries.
        """
        base = self.classifier
        if not (hasattr(base, "clone") and hasattr(base, "cache")):
            return [base] * workers
        if not self._thread_clones:
            self._thread_epoch = int(getattr(base, "update_epoch", 0))
        while len(self._thread_clones) < workers:
            self._thread_clones.append(base.clone())
        current = int(getattr(base, "update_epoch", 0))
        if current != self._thread_epoch:
            for clone in self._thread_clones:
                clone.cache.advance_epoch()
            self._thread_epoch = current
        return self._thread_clones[:workers]

    def _run_threads(
        self,
        headers: np.ndarray,
        bounds: list[tuple[int, int]],
        entries: list[_ScheduledEntry],
        update_results: list,
        update_latencies: list[float],
        *,
        plan: FaultPlan | None = None,
        attempt: int = 0,
        report: FaultReport | None = None,
    ) -> tuple[list[ChunkOutput], int]:
        """One run over a shard-affine thread pool.

        Chunks are assigned round-robin to shards; each shard serves its
        chunks *in order* on one future, so a shard's private cache sees
        the same chunk sequence a process shard would.  Updates are
        epoch barriers: all chunks of one epoch drain before the batch
        applies on the (serving) thread, then every shard cache is
        epoch-invalidated — identical matches to the other modes.

        Supervision is per shard group: a failed or deadline-overrun
        future's chunks are re-served inline on the parent classifier —
        still strictly between the same two update barriers, so the
        replay stays in its epoch.  A hung worker thread cannot be
        killed, so its executor is abandoned (``shutdown(wait=False)``)
        and replaced; the abandoned future's eventual result is never
        read, making its late writes harmless.
        """
        from concurrent.futures import ThreadPoolExecutor
        from concurrent.futures import TimeoutError as FutureTimeout

        from ..core.errors import ChunkTimeoutError

        sup = self._supervisor
        timeout = self._timeout_s()
        workers = min(self.shards, len(bounds))
        clones = self._ensure_thread_clones(workers)
        cached = clones[0] is not self.classifier
        outputs: list[ChunkOutput | None] = [None] * len(bounds)

        def _shard_serve(clone, chunk_ids, shard):
            out = []
            for i in chunk_ids:
                if plan is not None:
                    specs = plan.worker_faults(i, attempt, shard=shard)
                    if specs:
                        fire_worker_specs(
                            specs, in_process=True, chunk=i, shard=shard,
                            timeout_s=timeout,
                        )
                out.append(
                    (i, _run_chunk_local(clone, headers, bounds[i]) + (shard,))
                )
            return out

        n_chunks = len(bounds)
        idx = 0
        start = 0
        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )
        abandoned = False
        try:
            while start < n_chunks:
                while (
                    idx < len(entries)
                    and entries[idx].effect_chunk <= start
                ):
                    entry = entries[idx]
                    result = self._apply_entry(
                        entry, idx, update_latencies, plan, report
                    )
                    if result is not None:
                        update_results.append(result)
                        if cached:
                            for clone in clones:
                                clone.cache.advance_epoch()
                            self._thread_epoch = int(
                                getattr(self.classifier, "update_epoch", 0)
                            )
                    idx += 1
                stop = n_chunks
                if idx < len(entries) and entries[idx].effect_chunk < stop:
                    stop = entries[idx].effect_chunk
                # Flush lazily-patched kernel state on the serving thread
                # before shards walk the structures concurrently.
                warm_batch_state(self.classifier, headers.shape[1])
                group = list(range(start, stop))
                futures = [
                    (s, group[s::workers],
                     pool.submit(_shard_serve, clones[s], group[s::workers], s))
                    for s in range(workers)
                ]
                for s, ids, fut in futures:
                    deadline = timeout * max(1, len(ids)) if timeout else None
                    try:
                        served = fut.result(timeout=deadline)
                    except FutureTimeout:
                        exc = ChunkTimeoutError(
                            f"thread shard {s} exceeded its {deadline:.2f}s "
                            f"group deadline ({len(ids)} chunks)",
                            shard=s, cause="timeout",
                        )
                        served = self._thread_fallback(
                            exc, s, ids, headers, bounds, plan, attempt,
                            report, sup,
                        )
                        # The hung worker thread is a write-off: swap in
                        # a fresh executor for the remaining groups and
                        # abandon the old one without joining it.
                        stale = pool
                        pool = ThreadPoolExecutor(
                            max_workers=workers,
                            thread_name_prefix="repro-shard",
                        )
                        stale.shutdown(wait=False)
                        abandoned = True
                    except RECOVERABLE as exc:
                        served = self._thread_fallback(
                            exc, s, ids, headers, bounds, plan, attempt,
                            report, sup,
                        )
                    for i, out in served:
                        outputs[i] = out
                start = stop
        finally:
            pool.shutdown(wait=not abandoned)
        return outputs, workers

    def _thread_fallback(
        self, exc, shard, chunk_ids, headers, bounds, plan, attempt,
        report, sup,
    ):
        """Re-serve one failed thread shard's chunk group inline on the
        parent classifier.  The group sits strictly between two update
        barriers, so replaying it chunk-by-chunk stays in its epoch."""
        if report is not None:
            report.record_failure(exc, shard=shard)
        if sup is None or sup.policy.fault_policy == "fail":
            raise (sup or Supervisor()).wrap_failure(
                exc, tier="threads", shard=shard
            ) from exc
        if report is not None:
            report.retries += 1
            report.replays += len(chunk_ids)
        return [
            (
                i,
                self._serve_chunk_inline(
                    headers, bounds[i], i, plan, attempt + 1, report,
                    shard=shard,
                ) + (shard,),
            )
            for i in chunk_ids
        ]

    # -- inline tier ----------------------------------------------------
    def _serve_chunk_inline(
        self,
        headers: np.ndarray,
        b: tuple[int, int],
        index: int,
        plan: FaultPlan | None = None,
        attempt: int = 0,
        report: FaultReport | None = None,
        shard: int | None = None,
    ):
        """Serve one chunk on the parent classifier with per-chunk
        bounded retry (the inline tier, and the thread tier's fallback
        path, both land here)."""
        sup = self._supervisor
        tries = 0
        while True:
            try:
                if plan is not None:
                    specs = plan.worker_faults(
                        index, attempt + tries, shard=shard
                    )
                    if specs:
                        fire_worker_specs(
                            specs, in_process=True, chunk=index, shard=shard,
                            timeout_s=self._timeout_s(),
                        )
                return _run_chunk_local(self.classifier, headers, b)
            except RECOVERABLE as exc:
                if report is not None:
                    report.record_failure(exc, shard=shard)
                retriable = (
                    sup is not None
                    and sup.policy.fault_policy != "fail"
                    and tries < sup.policy.max_retries
                )
                if not retriable:
                    raise (sup or Supervisor()).wrap_failure(
                        exc, tier="inline", chunk=index, shard=shard
                    ) from exc
                if report is not None:
                    report.retries += 1
                    report.replays += 1
                time.sleep(sup.backoff_s(tries))
                tries += 1

    def _run_inline(
        self,
        headers: np.ndarray,
        bounds: list[tuple[int, int]],
        entries: list[_ScheduledEntry],
        update_results: list,
        update_latencies: list[float],
        *,
        plan: FaultPlan | None = None,
        attempt: int = 0,
        report: FaultReport | None = None,
    ) -> tuple[list[ChunkOutput], int]:
        """Single-process serving loop — the ladder floor.  Updates are
        interleaved at their chunk boundaries; under supervision each
        *chunk* (not the dispatch) is retried, because batches already
        applied mid-loop make whole-dispatch replay epoch-unsafe."""
        outputs: list[ChunkOutput] = []
        idx = 0
        for i, b in enumerate(bounds):
            while idx < len(entries) and entries[idx].effect_chunk <= i:
                result = self._apply_entry(
                    entries[idx], idx, update_latencies, plan, report
                )
                if result is not None:
                    update_results.append(result)
                idx += 1
            outputs.append(
                self._serve_chunk_inline(
                    headers, b, i, plan, attempt, report
                ) + (0,)
            )
        # Batches scheduled past the last chunk apply after the trace.
        while idx < len(entries):
            result = self._apply_entry(
                entries[idx], idx, update_latencies, plan, report
            )
            if result is not None:
                update_results.append(result)
            idx += 1
        return outputs, 1

    def _aggregate(
        self,
        outputs: list[ChunkOutput],
        bounds: list[tuple[int, int]],
        n: int,
        elapsed: float,
        workers: int,
        entries: list[_ScheduledEntry] | None = None,
        base_epoch: int | None = None,
        update_results: list | None = None,
        update_latencies: list[float] | None = None,
        fault: FaultReport | None = None,
    ) -> PipelineResult:
        entries = entries or []
        # Epoch of chunk i = version at run start + batches in effect by
        # chunk i; deterministic whichever process applied them.
        effects = [e.effect_chunk for e in entries]
        ops_at: dict[int, int] = {}
        for e in entries:
            ops_at[e.effect_chunk] = ops_at.get(e.effect_chunk, 0) + len(
                e.batch
            )
        # Densify worker labels (pids / thread indices) into 0-based
        # shard ids, in first-served chunk order.
        shard_of: dict[int, int] = {}
        for out in outputs:
            shard_of.setdefault(out[3], len(shard_of))
        chunks: list[ChunkStats] = []
        for i, ((start, end), (match, occ, cache, label)) in enumerate(
            zip(bounds, outputs)
        ):
            epoch = (
                None if base_epoch is None
                else base_epoch + bisect_left(effects, i + 1)
            )
            chunks.append(
                ChunkStats(
                    index=i,
                    start=start,
                    n_packets=end - start,
                    matched=int((match >= 0).sum()),
                    occupancy_sum=None if occ is None else int(occ.sum()),
                    cache_hits=None if cache is None else cache[0],
                    cache_misses=None if cache is None else cache[1],
                    cache_evictions=None if cache is None else cache[2],
                    epoch=epoch,
                    updates_applied=ops_at.get(i, 0),
                    shard=shard_of[label],
                )
            )
        if outputs:
            match = np.concatenate([m for m, _, _, _ in outputs])
            occs = [o for _, o, _, _ in outputs]
            occupancy = (
                np.concatenate(occs) if all(o is not None for o in occs) else None
            )
        else:
            match = np.empty(0, dtype=np.int64)
            occupancy = None
        caches = [c for _, _, c, _ in outputs]
        has_cache = bool(caches) and all(c is not None for c in caches)
        skipped = sum(
            getattr(r, "skipped", 0) for r in (update_results or [])
        )
        return PipelineResult(
            match=match,
            chunks=chunks,
            n_shards=workers,
            chunk_size=self.chunk_size,
            elapsed_s=elapsed,
            backend=getattr(self.classifier, "backend_name",
                            type(self.classifier).__name__),
            occupancy=occupancy,
            cache_hits=sum(c[0] for c in caches) if has_cache else None,
            cache_misses=sum(c[1] for c in caches) if has_cache else None,
            cache_evictions=sum(c[2] for c in caches) if has_cache else None,
            update_batches=len(entries),
            update_ops=sum(len(e.batch) for e in entries),
            update_skipped=skipped,
            update_latencies_s=tuple(update_latencies or ()),
            final_epoch=(
                None if base_epoch is None else base_epoch + len(entries)
            ),
            fault=fault,
        )


def _run_chunk_local(
    classifier: Classifier, headers: np.ndarray, bounds: tuple[int, int]
) -> tuple[np.ndarray, np.ndarray | None, tuple[int, int, int] | None]:
    start, end = bounds
    stats: BatchStats = batch_stats_of(classifier, headers[start:end])
    cache = (
        None
        if stats.cache_hits is None or stats.cache_misses is None
        else (
            stats.cache_hits,
            stats.cache_misses,
            stats.cache_evictions or 0,
        )
    )
    return stats.match, stats.occupancy, cache
