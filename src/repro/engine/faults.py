"""Deterministic fault injection for the serving runtime.

A :class:`FaultPlan` is a seeded, fully declarative description of the
faults one serving run (or streamed session) must survive: worker
crashes and hangs at a given chunk, shared-memory arena corruption,
ingestion I/O errors at a given segment, and update-batch apply
failures.  The same plan drives three consumers with one mechanism:

* the fault-tolerance test grid (``tests/test_fault_tolerance.py``),
* the CI chaos step (tier-1, ``REPRO_QUICK=1``),
* user soak runs, via ``repro-classify bench --faults PLAN.json``.

Determinism is the whole point: a plan names *where* each fault fires
(chunk / segment / batch ordinal) and *how often* (``times`` — a fault
fires while the dispatch ``attempt`` is below it, so a retried chunk
sails through), never a random process.  The parent computes which
specs apply to each dispatch and ships exactly those in the task
descriptor, so workers need no shared state to misbehave on cue.

Fault kinds
-----------

``crash``
    the worker process calls ``os._exit`` (in-process tiers raise
    :class:`~repro.core.errors.InjectedFault` instead — a thread cannot
    crash alone);
``hang``
    the worker sleeps ``seconds`` (past ``chunk_timeout_s`` this trips
    the supervisor's deadline);
``error``
    the worker raises :class:`~repro.core.errors.InjectedFault`;
``arena``
    the parent scribbles the arena's control word before dispatch, so
    the worker's generation-fence check trips
    (:class:`~repro.core.errors.ArenaCorruptionError`) — persistent
    pool only, a no-op elsewhere;
``ingest``
    the streamed session's ingestion thread raises
    :class:`~repro.core.errors.IngestError` before fetching segment
    ``segment``;
``update``
    the update-apply site raises :class:`~repro.core.errors.
    InjectedFault` before applying batch ordinal ``batch``;
``drop_storm``
    a stage-graph-only kind: the targeted line-card stage drops every
    packet reaching it for the attempts it fires on (modelling an
    upstream policer meltdown / ACL misprogram), accounted per stage
    under the ``"drop_storm"`` drop reason.

Stage targeting: a spec with ``stage`` set names a line-card pipeline
stage (:mod:`repro.stages`) as its injection site instead of an engine
internals site — ``crash``/``error`` raise at that stage's boundary
(retried under the engine's supervision policy), ``drop_storm`` drops.
Stage-targeted specs never fire inside the engine's own worker/arena/
ingest/update sites, and vice versa.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, fields

from ..core.errors import (
    ChunkTimeoutError,
    ConfigError,
    IngestError,
    InjectedFault,
)

#: The fault kinds a :class:`FaultSpec` accepts.
FAULT_KINDS = (
    "crash", "hang", "error", "arena", "ingest", "update", "drop_storm",
)

#: Kinds fired inside a chunk-serving worker.
WORKER_KINDS = ("crash", "hang", "error")

#: Kinds a stage-targeted spec (``stage`` set) may carry.
STAGE_KINDS_ALLOWED = ("crash", "error", "drop_storm")

#: Exit code an injected worker crash dies with (distinct from 0 and
#: from Python's generic 1, so the supervisor's exit-code watch can
#: attribute the death).
CRASH_EXIT_CODE = 70


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault.

    ``chunk``/``segment``/``batch`` select the target ordinal for the
    relevant kind (``None`` = any chunk / the first segment / any
    batch).  ``shard`` optionally restricts worker faults to one
    thread-tier shard.  ``stage`` retargets the spec at a named
    line-card stage (:mod:`repro.stages`) instead of an engine site —
    only ``crash``/``error``/``drop_storm`` make sense there, and
    ``drop_storm`` *requires* a stage.  ``times`` is the number of
    dispatch *attempts* the fault fires on — the default 1 means "first
    attempt only", so a supervised retry recovers.
    """

    kind: str
    chunk: int | None = None
    shard: int | None = None
    segment: int | None = None
    batch: int | None = None
    stage: str | None = None
    times: int = 1
    seconds: float = 5.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}"
            )
        if self.times < 1:
            raise ConfigError(f"fault times must be >= 1, got {self.times}")
        if self.seconds < 0:
            raise ConfigError(
                f"fault seconds must be >= 0, got {self.seconds}"
            )
        if self.kind == "drop_storm" and self.stage is None:
            raise ConfigError(
                "drop_storm faults target a line-card stage; set stage="
            )
        if self.stage is not None and self.kind not in STAGE_KINDS_ALLOWED:
            raise ConfigError(
                f"stage-targeted faults must be one of "
                f"{', '.join(STAGE_KINDS_ALLOWED)}, got {self.kind!r}"
            )

    def to_dict(self) -> dict:
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) != f.default
        } | {"kind": self.kind}


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of :class:`FaultSpec` to inject into a run.

    Serialises to/from plain JSON (``to_dict``/``from_dict``/``save``/
    ``load``) so CI chaos configs and recorded soak-run plans are the
    same artifact.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "specs",
            tuple(
                s if isinstance(s, FaultSpec) else FaultSpec(**s)
                for s in self.specs
            ),
        )

    def __bool__(self) -> bool:
        return bool(self.specs)

    # -- selection -----------------------------------------------------
    def worker_faults(
        self, chunk: int, attempt: int, shard: int | None = None
    ) -> tuple[FaultSpec, ...]:
        """Worker-side specs that fire for ``chunk`` on this
        ``attempt`` (parent computes this and ships the result in the
        task descriptor)."""
        return tuple(
            s
            for s in self.specs
            if s.stage is None
            and s.kind in WORKER_KINDS
            and s.chunk in (None, chunk)
            and (s.shard is None or shard is None or s.shard == shard)
            and attempt < s.times
        )

    def arena_faults(self, attempt: int) -> tuple[FaultSpec, ...]:
        return tuple(
            s for s in self.specs if s.kind == "arena" and attempt < s.times
        )

    def ingest_faults(
        self, segment: int, attempt: int
    ) -> tuple[FaultSpec, ...]:
        return tuple(
            s
            for s in self.specs
            if s.kind == "ingest"
            and s.segment in (None, segment)
            and attempt < s.times
        )

    def update_faults(self, batch: int, attempt: int) -> tuple[FaultSpec, ...]:
        return tuple(
            s
            for s in self.specs
            if s.kind == "update"
            and s.batch in (None, batch)
            and attempt < s.times
        )

    def stage_faults(
        self, stage: str, segment: int, attempt: int
    ) -> tuple[FaultSpec, ...]:
        """Stage-targeted specs firing at line-card stage ``stage`` for
        stream segment ``segment`` on this ``attempt`` (a spec without a
        ``segment`` targets segment 0, matching :meth:`for_segment`)."""
        return tuple(
            s
            for s in self.specs
            if s.stage == stage
            and (s.segment if s.segment is not None else 0) == segment
            and attempt < s.times
        )

    def stage_plan(self) -> "FaultPlan | None":
        """The stage-targeted sub-plan (specs with ``stage`` set)."""
        specs = tuple(s for s in self.specs if s.stage is not None)
        return FaultPlan(specs=specs, seed=self.seed) if specs else None

    def engine_plan(self) -> "FaultPlan | None":
        """The engine-internals sub-plan (specs without a ``stage``)."""
        specs = tuple(s for s in self.specs if s.stage is None)
        return FaultPlan(specs=specs, seed=self.seed) if specs else None

    def for_segment(self, segment: int) -> "FaultPlan | None":
        """The worker/arena/update sub-plan for one stream segment.

        A spec without a ``segment`` targets the first segment (segment
        0 — also the whole run of a one-shot ``classify``).  Ingest
        specs are excluded: they belong to the ingestion thread, not to
        per-segment pipeline runs.
        """
        specs = tuple(
            s
            for s in self.specs
            if s.kind != "ingest"
            and (s.segment if s.segment is not None else 0) == segment
        )
        if not specs:
            return None
        return FaultPlan(specs=specs, seed=self.seed)

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "specs": [s.to_dict() for s in self.specs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ConfigError(
                f"FaultPlan.from_dict expects a dict, "
                f"got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"seed", "specs"})
        if unknown:
            raise ConfigError(
                f"unknown FaultPlan field(s): {', '.join(unknown)}"
            )
        specs = []
        for raw in data.get("specs", ()):
            known = {f.name for f in fields(FaultSpec)}
            bad = sorted(set(raw) - known)
            if bad:
                raise ConfigError(
                    f"unknown FaultSpec field(s): {', '.join(bad)}"
                )
            specs.append(FaultSpec(**raw))
        return cls(specs=tuple(specs), seed=int(data.get("seed", 0)))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            try:
                data = json.load(fh)
            except ValueError as exc:
                raise ConfigError(f"{path}: not valid JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def coerce(cls, obj) -> "FaultPlan | None":
        """Normalise a run's ``faults=`` argument: a plan, a dict, a
        list of specs, a path string, or None."""
        if obj is None or isinstance(obj, cls):
            return obj or None
        if isinstance(obj, str):
            return cls.load(obj)
        if isinstance(obj, dict):
            return cls.from_dict(obj)
        if isinstance(obj, (list, tuple)):
            return cls(specs=tuple(obj)) or None
        raise ConfigError(
            f"cannot build a FaultPlan from {type(obj).__name__}"
        )


# ----------------------------------------------------------------------
def fire_worker_specs(
    specs: tuple[FaultSpec, ...],
    *,
    in_process: bool,
    chunk: int | None = None,
    shard: int | None = None,
    timeout_s: float = 0.0,
) -> None:
    """Execute worker-side fault specs at a chunk-serving site.

    ``in_process=True`` (thread tier, inline tier) maps ``crash`` to a
    raised :class:`InjectedFault` — a thread cannot kill itself without
    taking the process down — and emulates the hang watchdog: the site
    sleeps up to the deadline and raises
    :class:`~repro.core.errors.ChunkTimeoutError` when the injected
    hang outlasts it.  In a forked worker ``crash`` is a real
    ``os._exit`` and ``hang`` a real sleep; detection is the parent
    supervisor's job.
    """
    for spec in specs:
        if spec.kind == "crash":
            if in_process:
                raise InjectedFault(
                    spec.message
                    or f"injected crash while serving chunk {chunk}",
                    kind="crash", chunk=chunk, shard=shard,
                )
            os._exit(CRASH_EXIT_CODE)
        elif spec.kind == "hang":
            if in_process and timeout_s and spec.seconds > timeout_s:
                time.sleep(timeout_s)
                raise ChunkTimeoutError(
                    f"injected hang ({spec.seconds:.2f}s) outlasted the "
                    f"{timeout_s:.2f}s chunk deadline",
                    chunk=chunk, shard=shard, cause="hang",
                )
            time.sleep(spec.seconds)
        elif spec.kind == "error":
            raise InjectedFault(
                spec.message or f"injected error while serving chunk {chunk}",
                kind="error", chunk=chunk, shard=shard,
            )


def fire_update_specs(
    specs: tuple[FaultSpec, ...], batch: int
) -> None:
    """Raise the injected update-apply failure, if any (fires *before*
    the apply, so a retry re-applies a clean batch)."""
    for spec in specs:
        raise InjectedFault(
            spec.message or f"injected failure applying update batch {batch}",
            kind="update", chunk=batch,
        )


def fire_ingest_specs(
    specs: tuple[FaultSpec, ...], segment: int
) -> None:
    """Raise the injected ingestion failure, if any (fires *before* the
    source is pulled, so the source iterator survives a retry)."""
    for spec in specs:
        raise IngestError(
            spec.message or f"injected I/O error fetching segment {segment}",
            segment=segment,
            cause=spec.kind,
        )
