"""`SweepSpec` — the declarative description of a scenario grid.

The paper's evaluation is a *matrix* (ClassBench acl1/fw1/ipc1 families
at Table-4 sizes against OC-48/192/768 line rates), and the related
range-classification papers (RVH, the computational-approach line of
work) report family x size x skew grids as their headline evidence.  A
``SweepSpec`` names the axes of such a grid once, declaratively:

* ``families`` x ``sizes`` — the ClassBench workload (Table-4 scale);
* ``backends`` — any registered engine backend name;
* ``shards`` x ``shard_modes`` — the pipeline shape;
* ``cache_entries`` (x ``cache_ways``) — the flow-cache geometry
  (``0`` means "no cache", a real point on the grid);
* ``skews`` — Zipf flow-popularity skew of the trace;
* ``packet_bytes`` — wire packet size for line-rate feasibility;
* ``churn_rates`` — live rule updates per 1000 packets (0 = static);
* ``tenants`` — how many tenants share the cell's engine through a
  :class:`~repro.serve.MultiTenantEngine` session (1 = the plain
  single-tenant serving path; see ``docs/engine.md``);
* ``scenarios`` — the serving surface each cell executes through:
  ``"bare"`` (a plain :class:`~repro.serve.Engine` session) or
  ``"linecard"`` (the full :mod:`repro.stages` RX stage graph over the
  same engine config; see ``docs/linecard.md``).

:meth:`SweepSpec.expand` takes the cross product of every axis and
yields concrete :class:`SweepCell`\\ s, each of which maps onto exactly
one :class:`~repro.serve.EngineConfig` (:meth:`SweepCell.engine_config`)
plus a fully seeded workload.  Seeding is *deterministic per cell
coordinate*: the same spec always expands to the same per-cell configs
and seeds (the sweep test suite pins this), so a grid cell is
reproducible in isolation — ``--filter family=fw1`` reruns exactly the
cells a full sweep would have run.

Like :class:`~repro.serve.EngineConfig`, a spec round-trips losslessly
through plain JSON (``to_dict``/``from_dict``, ``save``/``load``) and
rejects unknown keys and invalid axis values loudly at construction.
"""

from __future__ import annotations

import dataclasses
import json
import zlib
from dataclasses import dataclass

from ..classbench import FAMILIES
from ..core.errors import ConfigError
from ..engine.pipeline import SHARD_MODES
from ..engine.registry import backend_spec
from ..serve import EngineConfig

#: Named sweep tiers (see :func:`default_spec`).
TIERS = ("quick", "full", "soak")

#: The serving scenarios the ``scenarios`` axis accepts.
SCENARIOS = ("bare", "linecard")


def _axis(name: str, values, kind, minimum=None) -> tuple:
    """Coerce a JSON list (or tuple) axis to a validated tuple."""
    if not isinstance(values, (list, tuple)) or not values:
        raise ConfigError(f"{name} must be a non-empty list, got {values!r}")
    out = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, float, str)):
            raise ConfigError(f"{name} contains non-scalar value {v!r}")
        v = kind(v)
        if minimum is not None and v < minimum:
            raise ConfigError(f"{name} values must be >= {minimum}, got {v}")
        out.append(v)
    if len(set(out)) != len(out):
        raise ConfigError(f"{name} contains duplicate values: {values!r}")
    return tuple(out)


@dataclass(frozen=True)
class SweepCell:
    """One concrete grid point: a workload + an engine configuration.

    ``seed`` is the spec's base seed; the per-purpose seeds below mix
    it with the *workload-shaping* coordinates only (stable CRC, never
    expansion order), so filtering or reordering the grid cannot change
    any cell's workload — and cells differing only in engine shape
    (backend/shards/cache) draw the exact same ruleset and trace.
    """

    family: str
    size: int
    backend: str
    shards: int
    shard_mode: str
    cache_entries: int
    cache_ways: int
    skew: float
    packet_bytes: int
    churn: int
    packets: int
    flows: int
    chunk_size: int
    seed: int
    tenants: int = 1
    scenario: str = "bare"

    @property
    def cell_id(self) -> str:
        """Stable axis-coordinate key (the ``cells`` key in the
        artifact, and what ``--filter`` selects against).  The tenants
        and scenario coordinates only appear for non-default cells, so
        grids that never touch those axes keep their historical cell
        ids (and their committed baselines)."""
        suffix = f"/t{self.tenants}" if self.tenants > 1 else ""
        if self.scenario != "bare":
            suffix += f"/{self.scenario}"
        return (
            f"{self.family}/{self.size}/{self.backend}"
            f"/s{self.shards}-{self.shard_mode}"
            f"/e{self.cache_entries}w{self.cache_ways}"
            f"/z{self.skew:g}/p{self.packet_bytes}/u{self.churn}{suffix}"
        )

    def engine_config(self) -> EngineConfig:
        """The :class:`~repro.serve.EngineConfig` this cell executes."""
        return EngineConfig(
            backend=self.backend,
            shards=self.shards,
            shard_mode=self.shard_mode,
            chunk_size=self.chunk_size,
            cache_entries=self.cache_entries,
            cache_ways=self.cache_ways,
            updatable=self.churn > 0,
        )

    # -- per-purpose seeds ------------------------------------------------
    # Workload seeds depend only on the coordinates that shape the
    # workload, so cells differing in backend/shards/cache share the
    # exact same ruleset and trace — the grid compares engines, not
    # sampling noise.
    @property
    def ruleset_seed(self) -> int:
        return _stable_seed(self.seed, f"ruleset:{self.family}:{self.size}")

    @property
    def trace_seed(self) -> int:
        return _stable_seed(
            self.seed,
            f"trace:{self.family}:{self.size}:{self.skew:g}"
            f":{self.flows}:{self.packets}",
        )

    @property
    def update_seed(self) -> int:
        return _stable_seed(
            self.seed,
            f"updates:{self.family}:{self.size}:{self.churn}:{self.packets}",
        )


def _stable_seed(base: int, key: str) -> int:
    """Deterministic 31-bit seed from a base seed and a coordinate key
    (CRC32, not ``hash()`` — independent of ``PYTHONHASHSEED``)."""
    return (base * 2654435761 + zlib.crc32(key.encode())) % (2**31 - 1)


@dataclass(frozen=True)
class SweepSpec:
    """Declarative, validated, immutable sweep-grid description."""

    name: str = "paper-grid"
    families: tuple[str, ...] = ("acl1", "fw1", "ipc1")
    sizes: tuple[int, ...] = (300, 1200, 2500)
    backends: tuple[str, ...] = ("hypercuts", "tuple_space")
    shards: tuple[int, ...] = (1,)
    shard_modes: tuple[str, ...] = ("auto",)
    cache_entries: tuple[int, ...] = (0, 4096)
    cache_ways: int = 4
    skews: tuple[float, ...] = (0.7, 1.1)
    packet_bytes: tuple[int, ...] = (40,)
    churn_rates: tuple[int, ...] = (0,)
    tenants: tuple[int, ...] = (1,)
    scenarios: tuple[str, ...] = ("bare",)
    packets: int = 20_000
    flows: int = 1024
    chunk_size: int = 4096
    seed: int = 7

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError(f"name must be a non-empty string, got {self.name!r}")
        set_ = object.__setattr__
        set_(self, "families", _axis("families", self.families, str))
        set_(self, "sizes", _axis("sizes", self.sizes, int, minimum=1))
        set_(self, "backends", _axis("backends", self.backends, str))
        set_(self, "shards", _axis("shards", self.shards, int, minimum=1))
        set_(self, "shard_modes", _axis("shard_modes", self.shard_modes, str))
        set_(
            self,
            "cache_entries",
            _axis("cache_entries", self.cache_entries, int, minimum=0),
        )
        set_(self, "skews", _axis("skews", self.skews, float, minimum=0.0))
        set_(
            self,
            "packet_bytes",
            _axis("packet_bytes", self.packet_bytes, int, minimum=1),
        )
        set_(
            self,
            "churn_rates",
            _axis("churn_rates", self.churn_rates, int, minimum=0),
        )
        set_(self, "tenants", _axis("tenants", self.tenants, int, minimum=1))
        set_(self, "scenarios", _axis("scenarios", self.scenarios, str))
        for scenario in self.scenarios:
            if scenario not in SCENARIOS:
                raise ConfigError(
                    f"unknown scenario {scenario!r}; "
                    f"expected one of {', '.join(SCENARIOS)}"
                )
        if "linecard" in self.scenarios and any(t > 1 for t in self.tenants):
            raise ConfigError(
                "the linecard scenario serves a single tenant; drop the "
                "multi-tenant values from the tenants axis or the "
                "linecard value from scenarios"
            )
        for family in self.families:
            if family not in FAMILIES:
                raise ConfigError(
                    f"unknown family {family!r}; "
                    f"expected one of {', '.join(sorted(FAMILIES))}"
                )
        # Canonicalise backend aliases the way EngineConfig does, so two
        # specs naming the same grid compare equal.
        set_(
            self,
            "backends",
            tuple(backend_spec(b).name for b in self.backends),
        )
        for mode in self.shard_modes:
            if mode not in SHARD_MODES:
                raise ConfigError(
                    f"unknown shard_mode {mode!r}; "
                    f"expected one of {', '.join(SHARD_MODES)}"
                )
        if self.cache_ways < 1:
            raise ConfigError(f"cache_ways must be >= 1, got {self.cache_ways}")
        for entries in self.cache_entries:
            if entries and entries % self.cache_ways:
                raise ConfigError(
                    f"cache_entries ({entries}) must be a multiple of "
                    f"cache_ways ({self.cache_ways})"
                )
        if self.packets < 1:
            raise ConfigError(f"packets must be >= 1, got {self.packets}")
        if self.flows < 1:
            raise ConfigError(f"flows must be >= 1, got {self.flows}")
        if self.chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {self.chunk_size}")

    # -- dict/JSON round-trip --------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation (tuples become lists; the exact
        ``from_dict`` inverse)."""
        out = dataclasses.asdict(self)
        return {
            k: list(v) if isinstance(v, tuple) else v for k, v in out.items()
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        if not isinstance(data, dict):
            raise ConfigError(
                f"SweepSpec.from_dict expects a dict, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown SweepSpec field(s): {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        return cls(**data)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "SweepSpec":
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot load sweep spec {path!r}: {exc}") from None
        return cls.from_dict(data)

    # -- expansion -------------------------------------------------------
    @property
    def n_cells(self) -> int:
        return (
            len(self.families)
            * len(self.sizes)
            * len(self.backends)
            * len(self.shards)
            * len(self.shard_modes)
            * len(self.cache_entries)
            * len(self.skews)
            * len(self.packet_bytes)
            * len(self.churn_rates)
            * len(self.tenants)
            * len(self.scenarios)
        )

    def expand(self) -> list[SweepCell]:
        """The full cross product, in stable axis order."""
        cells = []
        for family in self.families:
            for size in self.sizes:
                for backend in self.backends:
                    for shards in self.shards:
                        for mode in self.shard_modes:
                            for entries in self.cache_entries:
                                for skew in self.skews:
                                    for pkt in self.packet_bytes:
                                        for churn in self.churn_rates:
                                            for n_ten in self.tenants:
                                                for scn in self.scenarios:
                                                    cells.append(
                                                        self._cell(
                                                            family, size,
                                                            backend, shards,
                                                            mode, entries,
                                                            skew, pkt,
                                                            churn, n_ten,
                                                            scn,
                                                        )
                                                    )
        return cells

    def _cell(
        self, family, size, backend, shards, mode, entries, skew, pkt, churn,
        n_tenants=1, scenario="bare",
    ) -> SweepCell:
        return SweepCell(
            family=family,
            size=size,
            backend=backend,
            shards=shards,
            shard_mode=mode,
            cache_entries=entries,
            cache_ways=self.cache_ways,
            skew=skew,
            packet_bytes=pkt,
            churn=churn,
            packets=self.packets,
            flows=self.flows,
            chunk_size=self.chunk_size,
            seed=self.seed,
            tenants=n_tenants,
            scenario=scenario,
        )

    # -- tiers -----------------------------------------------------------
    def quick(self) -> "SweepSpec":
        """Shrink any spec to PR-path size: at most three sizes (capped
        at 2500 rules), single-shard, static rulesets, 20k packets."""
        sizes = tuple(s for s in self.sizes if s <= 2500)[:3] or self.sizes[:1]
        return dataclasses.replace(
            self,
            name=f"{self.name}-quick",
            sizes=sizes,
            shards=(1,),
            shard_modes=("auto",),
            churn_rates=tuple(self.churn_rates[:1]),
            packets=min(self.packets, 20_000),
        )


def default_spec(tier: str = "quick") -> SweepSpec:
    """The built-in paper-scale grids, by tier.

    ``quick``
        the PR-path grid: all three families x three Table-4 sizes
        (300/1200/2500) x two backends x a cache/skew grid — runs in a
        few minutes and is what ``benchmarks/sweeps_baseline.json``
        pins.
    ``full``
        the nightly grid: five Table-4 sizes per family (up to 10k
        rules), both shard points, a three-point cache axis, packet
        sizes for the line-rate sweep, 100k packets per cell.
    ``soak``
        the nightly churn tier: the full grid plus live update streams
        (updates riding every cell), catching update-path drift no
        static grid can see.
    """
    if tier == "quick":
        return SweepSpec(
            name="paper-grid-quick",
            scenarios=("bare", "linecard"),
        )
    if tier == "full":
        return SweepSpec(
            name="paper-grid-full",
            sizes=(300, 1200, 2500, 5000, 10_000),
            backends=("hicuts", "hypercuts", "tuple_space"),
            shards=(1, 2),
            cache_entries=(0, 1024, 4096),
            skews=(0.7, 1.1),
            packet_bytes=(40, 1500),
            packets=100_000,
        )
    if tier == "soak":
        return SweepSpec(
            name="paper-grid-soak",
            sizes=(300, 1200, 2500),
            backends=("hypercuts", "tuple_space"),
            cache_entries=(0, 4096),
            skews=(1.1,),
            churn_rates=(8, 64),
            packets=200_000,
        )
    raise ConfigError(
        f"unknown sweep tier {tier!r}; expected one of {', '.join(TIERS)}"
    )


def parse_filters(pairs: list[str]) -> dict[str, set[str]]:
    """``["family=fw1", "size=300,1200"]`` -> axis-value constraint map.

    Keys are cell-coordinate fields; values are comma-separated
    alternatives (a cell passes when *every* key matches *one* of its
    values).  Unknown keys are rejected loudly.
    """
    allowed = {
        "family", "size", "backend", "shards", "shard_mode",
        "cache_entries", "skew", "packet_bytes", "churn", "tenants",
        "scenario",
    }
    out: dict[str, set[str]] = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep or not value:
            raise ConfigError(
                f"bad --filter {pair!r}; expected AXIS=VALUE[,VALUE...]"
            )
        if key not in allowed:
            raise ConfigError(
                f"unknown --filter axis {key!r}; "
                f"expected one of {', '.join(sorted(allowed))}"
            )
        out.setdefault(key, set()).update(value.split(","))
    return out


def match_filters(cell: SweepCell, filters: dict[str, set[str]]) -> bool:
    """Whether a cell satisfies every axis constraint."""
    for key, values in filters.items():
        have = getattr(cell, key)
        text = f"{have:g}" if isinstance(have, float) else str(have)
        if text not in values:
            return False
    return True
