"""Render a ``BENCH_sweeps.json`` artifact as a markdown matrix.

The CI sweep jobs append this to ``$GITHUB_STEP_SUMMARY``: one table
per ClassBench family (rows = Table-4 ruleset sizes, columns = the
engine configurations the grid crossed them with), followed by a
line-rate feasibility roll-up against OC-48/192/768.  Column labels
only name the axes that actually vary in the artifact, so a quick grid
renders compact while the nightly grid stays unambiguous.
"""

from __future__ import annotations


def _column_key(m: dict) -> tuple:
    return (
        m["backend"],
        m["cache_entries"],
        m["skew"],
        m["shards"],
        m["shard_mode"],
        m["packet_bytes"],
        m["churn"],
        # Pre-tenancy artifacts have no tenants field: single-tenant.
        m.get("tenants", 1),
    )


def _column_label(key: tuple, varying: dict[str, bool]) -> str:
    backend, entries, skew, shards, mode, pkt, churn, tenants = key
    parts = [backend]
    if varying["cache_entries"]:
        parts.append("bare" if not entries else f"e{entries}")
    if varying["skew"]:
        parts.append(f"z{skew:g}")
    if varying["shards"] or varying["shard_mode"]:
        parts.append(f"s{shards}" + (f"-{mode}" if varying["shard_mode"] else ""))
    if varying["packet_bytes"]:
        parts.append(f"p{pkt}")
    if varying["churn"]:
        parts.append(f"u{churn}")
    if varying["tenants"]:
        parts.append(f"t{tenants}")
    return " ".join(parts)


def _fmt_cell(m: dict) -> str:
    text = f"{m['throughput_pps']:,} pps"
    hit = m.get("hit_rate")
    if hit is not None:
        text += f"<br>hit {100 * hit:.1f}%"
    p95 = m.get("update_latency_p95_ms")
    if p95 is not None:
        text += f"<br>upd p95 {p95:.2f} ms"
    return text


def render_matrix(artifact: dict) -> str:
    """Markdown for one sweep artifact (``SweepResult.to_dict()`` or a
    loaded ``BENCH_sweeps.json``)."""
    spec = artifact.get("spec", {})
    cells: dict[str, dict] = artifact.get("cells", {})
    lines = [
        f"## Sweep matrix — `{spec.get('name', 'sweep')}`",
        "",
        f"{len(cells)} cells, {artifact.get('elapsed_s', 0):.1f}s wall clock, "
        f"seed {spec.get('seed')}.",
    ]
    if not cells:
        lines += ["", "*(no cells — empty sweep or over-narrow filter)*"]
        return "\n".join(lines)
    metrics = list(cells.values())
    varying = {
        axis: len({m[axis] for m in metrics}) > 1
        for axis in (
            "cache_entries", "skew", "shards", "shard_mode",
            "packet_bytes", "churn",
        )
    }
    varying["tenants"] = len({m.get("tenants", 1) for m in metrics}) > 1
    families = sorted({m["family"] for m in metrics})
    for family in families:
        fam = [m for m in metrics if m["family"] == family]
        sizes = sorted({m["size"] for m in fam})
        columns = sorted({_column_key(m) for m in fam})
        by_coord = {(_column_key(m), m["size"]): m for m in fam}
        lines += ["", f"### {family}", ""]
        header = [f"{family} rules"] + [
            _column_label(c, varying) for c in columns
        ]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + " ---: |" * len(header))
        for size in sizes:
            row = [f"{size:,}"]
            for col in columns:
                m = by_coord.get((col, size))
                row.append(_fmt_cell(m) if m is not None else "—")
            lines.append("| " + " | ".join(row) + " |")
    # Line-rate feasibility roll-up.
    rates: dict[str, list[bool]] = {}
    for m in metrics:
        for rate, entry in m.get("line_rates", {}).items():
            rates.setdefault(rate, []).append(bool(entry["sustained"]))
    if rates:
        lines += ["", "### Line-rate feasibility (wall-clock pps)", ""]
        for rate in sorted(rates):
            flags = rates[rate]
            lines.append(
                f"- **{rate}**: {sum(flags)}/{len(flags)} cells sustain "
                f"worst-case back-to-back packets"
            )
    return "\n".join(lines)
