"""Execute a :class:`~repro.sweeps.SweepSpec` grid through the engine.

Every cell runs through the same :class:`~repro.serve.Engine` session
facade production serving uses — the sweep measures the real serving
path, not a bench-only shortcut.  Per cell the runner records:

* ``throughput_pps`` / ``elapsed_s`` — wall-clock serving throughput
  (runner-sensitive, so *warn-only* downstream);
* ``hit_rate`` — flow-cache hit rate (deterministic given the seeded
  workload, so *gated* downstream);
* ``memory_accesses_per_lookup`` — the cache-effective (or bare
  worst-case) memory accesses per packet, from
  :class:`~repro.energy.CacheEnergyModel` (deterministic, *gated*);
* ``energy_per_packet_j`` — the SRAM energy model at the measured hit
  rate (deterministic, *gated*);
* ``line_rates`` — OC-48/192/768 feasibility at the cell's packet size
  (:func:`~repro.energy.line_rate_feasibility`);
* update latency percentiles, when the cell carries a churn stream.

Workloads and built backends are shared across cells wherever the cell
coordinates allow it (same family/size -> same ruleset; same trace
coordinates -> same trace; static cells share one built backend per
family/size/backend — the ``linecard`` scenario reuses its bare
neighbour's build), so a 144-cell quick grid costs ~18 builds, not 144.
Churn cells always build fresh — live updates mutate the classifier.

``scenario=linecard`` cells route the same workload through the full
:class:`~repro.stages.StageGraph` RX pipeline instead of a bare
``Engine.classify`` — same verdicts (the default graph drops nothing),
same gated metrics, plus the whole-graph energy per packet.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..classbench import churn_schedule, generate_ruleset, generate_zipf_trace
from ..energy import CacheEnergyModel, line_rate_feasibility
from ..engine.flowcache import CachedClassifier
from ..serve import (
    Engine,
    MultiTenantEngine,
    TenantSpec,
    iter_trace_segments,
)
from ..stages import StageGraph, default_graph
from .spec import SweepCell, SweepSpec, match_filters

#: Schema version of the ``BENCH_sweeps.json`` artifact.
ARTIFACT_VERSION = 1


@dataclass
class CellResult:
    """One executed grid cell: its coordinates and flat metrics."""

    cell: SweepCell
    metrics: dict


@dataclass
class SweepResult:
    """An executed sweep: the spec, every cell's metrics, wall clock."""

    spec: SweepSpec
    cells: list[CellResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    def to_dict(self) -> dict:
        """The ``BENCH_sweeps.json`` schema: spec + cell-id-keyed
        metrics (flat scalars only, so the comparison tool can flatten
        it the way ``compare_baseline.py`` flattens the engine
        artifact)."""
        return {
            "version": ARTIFACT_VERSION,
            "spec": self.spec.to_dict(),
            "n_cells": len(self.cells),
            "elapsed_s": round(self.elapsed_s, 3),
            "cells": {r.cell.cell_id: r.metrics for r in self.cells},
        }

    def save(self, path: str) -> Path:
        artifact = Path(path)
        artifact.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return artifact


def _cell_metrics(cell: SweepCell, report, classifier) -> dict:
    """Flatten one engine report into the cell's artifact record."""
    inner = getattr(classifier, "classifier", classifier)
    metrics = {
        "family": cell.family,
        "size": cell.size,
        "backend": cell.backend,
        "shards": cell.shards,
        "shard_mode": cell.shard_mode,
        "cache_entries": cell.cache_entries,
        "skew": cell.skew,
        "packet_bytes": cell.packet_bytes,
        "churn": cell.churn,
        "tenants": cell.tenants,
        "scenario": cell.scenario,
        "n_packets": report.n_packets,
        "matched_fraction": round(report.matched_fraction, 4),
        "elapsed_s": round(report.elapsed_s, 4),
        "throughput_pps": round(report.throughput_pps),
        "memory_bytes": int(inner.memory_bytes()),
    }
    model = CacheEnergyModel.for_classifier(classifier)
    hit_rate = report.cache_hit_rate
    if cell.cache_entries and hit_rate is not None:
        metrics["hit_rate"] = round(hit_rate, 4)
        metrics["memory_accesses_per_lookup"] = round(
            model.effective_accesses_per_lookup(hit_rate), 3
        )
        metrics["energy_per_packet_j"] = model.energy_per_packet_j(hit_rate)
    else:
        metrics["memory_accesses_per_lookup"] = round(model.backend_accesses, 3)
        metrics["energy_per_packet_j"] = model.uncached_energy_per_packet_j()
    metrics["line_rates"] = line_rate_feasibility(
        report.throughput_pps, packet_bytes=cell.packet_bytes
    )
    if cell.churn:
        metrics["update_batches"] = report.update_batches
        metrics["update_ops"] = report.update_ops
        pct = report.update_latency
        if pct is not None:
            metrics["update_latency_p50_ms"] = round(pct["p50_ms"], 3)
            metrics["update_latency_p95_ms"] = round(pct["p95_ms"], 3)
            metrics["update_latency_p99_ms"] = round(pct["p99_ms"], 3)
    return metrics


def _run_linecard_cell(
    cell, ruleset, trace, config, schedule, classifier
) -> dict:
    """Execute a ``scenario=linecard`` cell through the full
    :class:`~repro.stages.StageGraph` RX pipeline.

    The graph is the :func:`~repro.stages.default_graph` — every stage
    kind with permissive drop predicates, so the classify verdicts stay
    bit-identical to the cell's bare neighbour and the gated metrics
    (hit rate, accesses/lookup, energy) remain directly comparable.
    The scenario adds two warn-free extras: the total packets the
    non-classify stages dropped (0 for the default graph) and the
    whole-graph energy per packet, which prices the parse/TCAM/queue
    stages on top of the classify energy the bare cells report.
    """
    overlay = {
        k: v
        for k, v in config.to_dict().items()
        if k not in ("cache_entries", "cache_ways", "cache_max_age")
    }
    graph_spec = default_graph(
        overlay,
        cache_entries=cell.cache_entries,
        cache_ways=cell.cache_ways,
    )
    with StageGraph(graph_spec, ruleset, classifier=classifier) as graph:
        report = graph.run(
            trace, updates=schedule, segment_packets=cell.chunk_size
        )
        metrics = _cell_metrics(cell, report, graph.engine.classifier)
    metrics["stage_drops"] = sum(s.dropped for s in report.stages)
    metrics["graph_energy_per_packet_j"] = sum(
        s.energy_j for s in report.stages
    ) / max(report.n_packets, 1)
    return metrics


def _run_multi_tenant_cell(cell, ruleset, trace, config, schedule) -> dict:
    """Execute a ``tenants > 1`` cell through one
    :class:`~repro.serve.MultiTenantEngine` session.

    The cell's trace is split into N equal contiguous slices, one per
    tenant, and every tenant runs the *same* engine config against the
    *same* ruleset — the axis measures the admission scheduler and
    shared-pool overhead, not workload drift, so the aggregate metrics
    stay comparable with the cell's single-tenant neighbours.  A churn
    schedule rides on the first tenant only: the other tenants' epochs
    (and caches) must be untouched by its updates.
    """
    names = [f"t{i}" for i in range(cell.tenants)]
    tenants = [(TenantSpec(name=name, config=config), ruleset) for name in names]
    per = -(-trace.n_packets // cell.tenants)
    workloads = dict(zip(names, iter_trace_segments(trace, per)))
    updates = {names[0]: schedule} if schedule else None
    with MultiTenantEngine.open(tenants) as mte:
        report = mte.serve(
            workloads,
            updates=updates,
            segment_packets=max(1, min(per, cell.chunk_size)),
        )
        metrics = _cell_metrics(cell, report, mte.engine(names[0]).classifier)
    tenant_pps = [t.throughput_pps for t in report.tenants]
    metrics["min_tenant_pps"] = round(min(tenant_pps))
    return metrics


def run_sweep(
    spec: SweepSpec,
    filters: dict[str, set[str]] | None = None,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Execute every (filtered) cell of ``spec`` and collect metrics.

    ``filters`` is the :func:`~repro.sweeps.parse_filters` constraint
    map; ``progress`` (e.g. ``print``) receives one line per cell.
    """
    cells = spec.expand()
    if filters:
        cells = [c for c in cells if match_filters(c, filters)]
    rulesets: dict[tuple, object] = {}
    traces: dict[tuple, object] = {}
    backends: dict[tuple, object] = {}
    result = SweepResult(spec=spec)
    started = time.perf_counter()
    for i, cell in enumerate(cells):
        rs_key = (cell.family, cell.size, cell.ruleset_seed)
        ruleset = rulesets.get(rs_key)
        if ruleset is None:
            ruleset = rulesets[rs_key] = generate_ruleset(
                cell.family, cell.size, seed=cell.ruleset_seed
            )
        tr_key = (rs_key, cell.skew, cell.flows, cell.packets, cell.trace_seed)
        trace = traces.get(tr_key)
        if trace is None:
            trace = traces[tr_key] = generate_zipf_trace(
                ruleset,
                cell.packets,
                n_flows=cell.flows,
                skew=cell.skew,
                seed=cell.trace_seed,
            )
        config = cell.engine_config()
        classifier = None
        schedule = None
        if cell.churn:
            # Live updates mutate the classifier: churn cells never
            # share a build.  The engine adapts the backend through the
            # update-serving surface (config.updatable is set).
            schedule = churn_schedule(
                ruleset,
                cell.churn,
                cell.packets,
                seed=cell.update_seed,
            )
        elif cell.tenants == 1:
            # Multi-tenant cells skip the shared-build cache: the
            # MultiTenantEngine builds each tenant's own classifier.
            build_key = (rs_key, cell.backend)
            bare = backends.get(build_key)
            if bare is None:
                bare = backends[build_key] = Engine.build_classifier(
                    config.from_dict(
                        {**config.to_dict(), "cache_entries": 0}
                    ),
                    ruleset,
                )
            classifier = bare
            if cell.cache_entries:
                classifier = CachedClassifier(
                    bare, entries=cell.cache_entries, ways=cell.cache_ways
                )
        if cell.tenants > 1:
            metrics = _run_multi_tenant_cell(
                cell, ruleset, trace, config, schedule
            )
        elif cell.scenario == "linecard":
            metrics = _run_linecard_cell(
                cell, ruleset, trace, config, schedule, classifier
            )
        else:
            with Engine(config, ruleset, classifier=classifier) as engine:
                report = engine.classify(trace, updates=schedule)
                metrics = _cell_metrics(cell, report, engine.classifier)
        result.cells.append(CellResult(cell=cell, metrics=metrics))
        if progress is not None:
            hit = metrics.get("hit_rate")
            progress(
                f"[{i + 1}/{len(cells)}] {cell.cell_id}: "
                f"{metrics['throughput_pps']:,} pps"
                + (f", hit {100 * hit:.1f}%" if hit is not None else "")
            )
    result.elapsed_s = time.perf_counter() - started
    return result
