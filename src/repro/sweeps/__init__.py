"""Sweep-matrix subsystem: paper-scale scenario grids, declaratively.

The paper's evaluation is a matrix — ClassBench acl1/fw1/ipc1 families
at Table-4 sizes against OC-48/192/768 line rates — and this package
turns that shape into infrastructure: a :class:`SweepSpec` names the
grid axes once, :func:`run_sweep` executes every cell through the real
:class:`~repro.serve.Engine` serving path with deterministic per-cell
seeding, and the result lands as a ``BENCH_sweeps.json`` artifact plus
a rendered markdown matrix (:func:`render_matrix`) for the CI step
summary.  ``benchmarks/compare_sweeps.py`` diffs the artifact against
the committed ``benchmarks/sweeps_baseline.json`` with the same gated
regression and monotone-axis semantics the engine bench enjoys.

::

    from repro.sweeps import SweepSpec, default_spec, run_sweep

    result = run_sweep(default_spec("quick"))
    result.save("BENCH_sweeps.json")

See ``docs/sweeps.md`` for the spec schema and the CI tiers.
"""

from .matrix import render_matrix
from .runner import ARTIFACT_VERSION, CellResult, SweepResult, run_sweep
from .spec import (
    TIERS,
    SweepCell,
    SweepSpec,
    default_spec,
    match_filters,
    parse_filters,
)

__all__ = [
    "ARTIFACT_VERSION",
    "TIERS",
    "CellResult",
    "SweepCell",
    "SweepSpec",
    "SweepResult",
    "default_spec",
    "match_filters",
    "parse_filters",
    "render_matrix",
    "run_sweep",
]
