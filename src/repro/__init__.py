"""repro — reproduction of "Energy Efficient Packet Classification
Hardware Accelerator" (Kennedy, Wang & Liu, IPDPS 2008).

Public API quick tour::

    from repro import (
        RuleSet, PacketTrace, generate_ruleset, generate_trace,
        build_hicuts, build_hypercuts,
    )
    from repro.hw import build_memory_image, Accelerator
    from repro.energy import Sa1100Model, AsicModel, FpgaModel

    rules = generate_ruleset("acl1", 1000, seed=1)
    trace = generate_trace(rules, 100_000, seed=2)
    tree = build_hypercuts(rules, binth=30, spfac=4, hw_mode=True)
    image = build_memory_image(tree, speed=1)
    result = Accelerator(image).run_trace(trace)
    print(result.throughput_pps(226e6))

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from .core import (
    DEMO_SCHEMA,
    FIVE_TUPLE,
    FieldSchema,
    Packet,
    PacketTrace,
    ReproError,
    Rule,
    RuleSet,
    make_demo_ruleset,
)
from .classbench import generate_ruleset, generate_trace, generate_zipf_trace
from .algorithms import (
    DecisionTree,
    LinearSearchClassifier,
    OpCounter,
    RFCClassifier,
    TupleSpaceClassifier,
    build_hicuts,
    build_hypercuts,
)
from .engine import (
    CachedClassifier,
    ClassificationPipeline,
    available_backends,
    build_backend,
)
from .serve import (
    AsyncEngine,
    ChunkResult,
    Engine,
    EngineConfig,
    EngineReport,
    MultiTenantEngine,
    TenantReport,
    TenantSpec,
)

__version__ = "1.2.0"

__all__ = [
    "DEMO_SCHEMA",
    "FIVE_TUPLE",
    "FieldSchema",
    "Packet",
    "PacketTrace",
    "ReproError",
    "Rule",
    "RuleSet",
    "make_demo_ruleset",
    "generate_ruleset",
    "generate_trace",
    "generate_zipf_trace",
    "DecisionTree",
    "LinearSearchClassifier",
    "OpCounter",
    "RFCClassifier",
    "TupleSpaceClassifier",
    "build_hicuts",
    "build_hypercuts",
    "CachedClassifier",
    "ClassificationPipeline",
    "available_backends",
    "build_backend",
    "ChunkResult",
    "Engine",
    "AsyncEngine",
    "MultiTenantEngine",
    "TenantSpec",
    "TenantReport",
    "EngineConfig",
    "EngineReport",
    "__version__",
]
